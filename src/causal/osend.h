// OSend: causal broadcasting with explicit Occurs_After dependencies.
//
// This is the paper's primary communication construct (§3.1, §3.3). A
// member broadcasts `OSend(Msg, group, Occurs_After(m1 ∧ m2 ∧ ...))`; every
// member (including the sender) delivers Msg only after all named
// predecessors have been delivered locally. Unlike vector-clock CBCAST,
// *only* the dependencies the application names are enforced — the
// "semantic ordering" stance of the paper (footnote 1, citing Cheriton &
// Skeen): incidental transport-level ordering is not promoted to a
// constraint, which yields strictly fewer hold-backs (bench C1).
//
// Each member also maintains:
//  - the growing MessageGraph of R(M) as observed (identical at all
//    members up to insertion order — the "stable form of the graph", §3.2);
//  - a stability MatrixClock from piggybacked delivered-prefix vectors, so
//    a member can tell when a message is known delivered everywhere
//    without extra message rounds.
//
// Wire layout: [u64 view_id][VectorClock delivered_prefix][envelope
// section] — the prelude is OSend-specific, the section is the shared
// Envelope codec (causal/envelope.h). A broadcast encodes ONE frame shared
// by every destination and by the sender's self-delivery; receivers parse
// in place and hold-back/log entries alias the same frame.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "causal/delivery.h"
#include "causal/envelope.h"
#include "graph/message_graph.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "group/group_view.h"
#include "stack/view_sync.h"
#include "time/matrix_clock.h"
#include "time/vector_clock.h"
#include "transport/reliable.h"
#include "transport/transport.h"
#include "util/thread_annotations.h"

namespace cbc {

/// One group member speaking the OSend protocol.
///
/// Construction registers a transport endpoint; construct all members of a
/// group before the first osend(). Not thread-safe per instance (each
/// member's handler already runs serially under both transports).
class OSendMember final : public ViewSyncMember {
 public:
  struct Options {
    /// Reliability layer configuration (pass-through by default; enable
    /// when the transport drops or duplicates).
    ReliableEndpoint::Options reliability{.enabled = false};
    /// When true, every delivered message is added to the local
    /// MessageGraph (costs memory on long runs; benches may disable).
    bool record_graph = true;
    /// When false, only the most recent delivery is retained in log()
    /// (memory-bounded long runs; pair with prune_stable()).
    bool keep_delivery_log = true;
    /// Observability sinks: OrderingStats collector + holdback gauge, a
    /// causal-hold-time histogram, and per-envelope submit/deliver spans
    /// with Occurs_After flow edges. Default: off.
    obs::Hooks obs{};
  };

  /// `transport` must outlive the member; the view is copied (the member
  /// owns its current view — see install_view()). The member's node id is
  /// assigned by the transport and must be a member of `view` — i.e.
  /// register members in ascending view order.
  OSendMember(Transport& transport, const GroupView& view, DeliverFn deliver)
      : OSendMember(transport, view, std::move(deliver), Options{}) {}
  OSendMember(Transport& transport, const GroupView& view, DeliverFn deliver,
              Options options);

  [[nodiscard]] NodeId id() const override { return endpoint_.id(); }

  /// The OSend primitive. Dependencies may name messages this member has
  /// not yet seen (they are enforced as hold-back at every receiver).
  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override;

  /// Convenience spelled like the paper: OSend(label, payload,
  /// Occurs_After(m)).
  MessageId osend(std::string label, std::vector<std::uint8_t> payload,
                  const DepSpec& deps) {
    return broadcast(std::move(label), std::move(payload), deps);
  }

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }

  /// Rebinds the upward delivery callback (stack splicing).
  void set_deliver(DeliverFn deliver) override;

  /// Number of messages currently held back waiting for dependencies.
  [[nodiscard]] std::size_t holdback_depth() const {
    const LockGuard guard(mutex_);
    return pending_.size();
  }

  /// Locally observed message dependency graph R(M).
  [[nodiscard]] const MessageGraph& graph() const { return graph_; }

  /// Contiguous delivered prefix per sender (rank-indexed by view).
  [[nodiscard]] const VectorClock& delivered_prefix() const override {
    return delivered_prefix_;
  }

  /// This member's knowledge of everyone's delivered prefixes.
  [[nodiscard]] const MatrixClock& knowledge() const { return knowledge_; }

  /// True when `id` is known to have been delivered at every member
  /// (conservative: based on contiguous prefixes from piggybacked acks).
  [[nodiscard]] bool is_stable(MessageId message) const;

  /// True when this member has delivered `message` (including messages
  /// already pruned below the stable floor).
  [[nodiscard]] bool has_delivered(MessageId message) const;

  /// Garbage-collects bookkeeping for messages known delivered everywhere
  /// (at or below the MatrixClock stable cut): their ids leave the
  /// delivered set, their nodes leave the graph, and — when
  /// keep_delivery_log is false — the log stays O(1). No ordering
  /// decision can ever consult a stable message again (any dependency on
  /// it is satisfied by the stable floor), so this is safe at any time.
  /// Returns the number of messages pruned.
  std::size_t prune_stable();

  /// Per-sender floor (rank-indexed): everything at or below it has been
  /// pruned by prune_stable().
  [[nodiscard]] const VectorClock& stable_floor() const {
    return stable_floor_;
  }

  // --- Dynamic membership (used by FlushCoordinator; see causal/flush.h).

  void install_view(const GroupView& new_view) override;
  void adopt_baseline(const VectorClock& baseline) override;

  /// Blocks application broadcasts (labels not starting with "__vc")
  /// while a view change is flushing; system traffic still flows.
  void suspend_sends() override { sends_suspended_ = true; }
  void resume_sends() override { sends_suspended_ = false; }
  [[nodiscard]] bool sends_suspended() const override {
    return sends_suspended_;
  }

  [[nodiscard]] const GroupView& view() const override { return view_; }

  // --- Robustness hooks (failure detection and crash recovery).

  /// Peers currently suspected by the reliability layer's heartbeat
  /// detector (empty unless Options::reliability.suspect_after_us > 0).
  [[nodiscard]] std::vector<NodeId> suspected_peers() const override {
    return endpoint_.suspected_peers();
  }

  /// Sends an out-of-band frame (no seq, no retransmission) to one peer —
  /// the carrier for state-transfer responses during crash recovery.
  void send_oob(NodeId to, std::span<const std::uint8_t> payload) {
    endpoint_.send_oob(to, payload);
  }

  /// True when the reliability layer holds no unacknowledged frames — the
  /// quiesce gate a member must pass before it may be crashed without
  /// orphaning messages at the survivors.
  [[nodiscard]] bool reliable_quiescent() const {
    return endpoint_.unacked_total() == 0;
  }

  /// Caps the cumulative acks advertised for `peer`'s data frames at its
  /// first `ceiling` broadcasts. The sender's i-th broadcast rides link
  /// seq i (the lockstep invariant adopt_baseline also relies on), so a
  /// checkpointing node that advances the ceiling to each flushed
  /// frontier entry never acknowledges a frame its own checkpoint does
  /// not cover — the senders keep retaining exactly what a restored
  /// incarnation will need retransmitted.
  void set_ack_ceiling(NodeId peer, SeqNo ceiling) {
    endpoint_.set_ack_ceiling(peer, ceiling);
  }

  /// The member's stack lock. broadcast() and the receive path take it
  /// (recursively — re-broadcasting from a deliver callback is fine).
  /// Layers built on top of this member (replica, lock, name service)
  /// guard their own externally-callable entry points with the SAME lock,
  /// so one stack has one lock and no ordering hazards. Needed only under
  /// ThreadTransport; uncontended (cheap) under SimTransport.
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  struct PendingMessage {
    Delivery delivery;
    std::size_t missing = 0;
    /// Wall-clock stamp when the message entered the hold-back queue
    /// (0 when observability is off) — source of the hold-time metric.
    std::int64_t held_since_us = 0;
  };

  void on_receive(NodeId from, const WireFrame& frame);
  void try_deliver(Delivery delivery) CBC_REQUIRES(mutex_);
  void deliver_now(Delivery delivery, std::int64_t held_since_us)
      CBC_REQUIRES(mutex_);
  [[nodiscard]] bool below_stable_floor(MessageId message) const
      CBC_REQUIRES(mutex_);

  Transport& transport_;
  GroupView view_;  // owned: replaced by install_view()
  DeliverFn deliver_;
  Options options_;
  ReliableEndpoint endpoint_;
  mutable RecursiveMutex mutex_{kRankStack, "osend stack"};
  bool sends_suspended_ = false;
  // Wire messages from senders outside the current view (a joiner racing
  // ahead of our install): replayed on install_view(). Frames are retained
  // by refcount — no bytes are copied into the buffer.
  std::vector<WireFrame> foreign_buffer_ CBC_GUARDED_BY(mutex_);

  SeqNo next_seq_ CBC_GUARDED_BY(mutex_) = 1;
  std::unordered_set<MessageId> delivered_ CBC_GUARDED_BY(mutex_);
  // Per-sender delivered seq sets above the contiguous prefix, to advance
  // delivered_prefix_ when deliveries complete out of seq order.
  std::unordered_map<NodeId, std::unordered_set<SeqNo>> delivered_above_
      CBC_GUARDED_BY(mutex_);
  std::unordered_map<MessageId, PendingMessage> pending_
      CBC_GUARDED_BY(mutex_);
  // missing dependency -> ids of pending messages waiting on it
  std::unordered_map<MessageId, std::vector<MessageId>> waiters_
      CBC_GUARDED_BY(mutex_);

  VectorClock delivered_prefix_;
  VectorClock stable_floor_;
  MatrixClock knowledge_;
  MessageGraph graph_;
  std::vector<Delivery> log_;
  OrderingStats stats_;
  obs::LatencyHistogram* hold_hist_ = nullptr;
  // Last member: unregisters before the state it reads is torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc
