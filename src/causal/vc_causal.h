// Vector-clock causal broadcast (Birman–Schiper–Stephenson CBCAST).
//
// The comparison point the paper builds on: ISIS-style causal broadcast
// that enforces the *full* potential-causality order — every message a
// member had delivered before sending is treated as a predecessor, whether
// or not the application semantics needs that edge. The paper argues (§3,
// footnote 1) that this over-ordering costs concurrency; bench C1
// quantifies the difference against OSendMember's explicit dependencies.
//
// Delivery rule for a message from sender rank j with timestamp ts at a
// member with clock VC:   ts[j] == VC[j] + 1   and   ts[k] <= VC[k]  ∀k≠j.
//
// Wire layout: [VectorClock timestamp][envelope section] — shared Envelope
// codec after the CBCAST prelude; one frame per broadcast, parsed in place.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_set>
#include <vector>

#include "causal/delivery.h"
#include "causal/envelope.h"
#include "group/group_view.h"
#include "time/vector_clock.h"
#include "transport/reliable.h"
#include "transport/transport.h"
#include "util/thread_annotations.h"

namespace cbc {

/// One group member speaking vector-clock CBCAST.
class VcCausalMember final : public BroadcastMember {
 public:
  struct Options {
    ReliableEndpoint::Options reliability{.enabled = false};
  };

  VcCausalMember(Transport& transport, const GroupView& view,
                 DeliverFn deliver)
      : VcCausalMember(transport, view, std::move(deliver), Options{}) {}
  VcCausalMember(Transport& transport, const GroupView& view,
                 DeliverFn deliver, Options options);

  [[nodiscard]] NodeId id() const override { return endpoint_.id(); }

  /// Broadcasts; `deps` is ignored — causality is inferred from the
  /// member's entire delivery history, which is the point of contrast
  /// with OSend.
  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override;

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return log_;
  }
  [[nodiscard]] const OrderingStats& stats() const override { return stats_; }

  void set_deliver(DeliverFn deliver) override;

  [[nodiscard]] std::size_t holdback_depth() const {
    const LockGuard guard(mutex_);
    return holdback_.size();
  }
  [[nodiscard]] const VectorClock& clock() const { return clock_; }
  [[nodiscard]] const GroupView& view() const override { return view_; }

  /// Stack lock — see OSendMember::stack_mutex().
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return mutex_;
  }

 private:
  struct HeldMessage {
    Delivery delivery;
    VectorClock timestamp;
  };

  void on_receive(NodeId from, const WireFrame& frame);
  [[nodiscard]] bool deliverable(const VectorClock& timestamp,
                                 std::size_t sender_rank) const
      CBC_REQUIRES(mutex_);
  void deliver_now(Delivery delivery, const VectorClock& timestamp,
                   std::size_t sender_rank) CBC_REQUIRES(mutex_);
  void scan_holdback() CBC_REQUIRES(mutex_);

  Transport& transport_;
  const GroupView& view_;
  DeliverFn deliver_;
  ReliableEndpoint endpoint_;
  mutable RecursiveMutex mutex_{kRankStack, "vc-causal stack"};

  SeqNo next_seq_ CBC_GUARDED_BY(mutex_) = 1;
  // Mutated under mutex_ but exposed by the unlocked clock() accessor
  // (tests read it quiescently), so not statically guarded.
  VectorClock clock_;
  std::list<HeldMessage> holdback_ CBC_GUARDED_BY(mutex_);
  std::unordered_set<MessageId> seen_ CBC_GUARDED_BY(mutex_);
  std::vector<Delivery> log_;
  OrderingStats stats_;
};

}  // namespace cbc
