#include "causal/flush.h"

#include "util/ensure.h"

namespace cbc {

FlushCoordinator::FlushCoordinator(Transport& transport, const GroupView& view,
                                   DeliverFn app_deliver,
                                   ViewInstalledFn on_view,
                                   OSendMember::Options options)
    : app_deliver_(std::move(app_deliver)),
      on_view_(std::move(on_view)),
      member_(
          transport, view,
          [this](const Delivery& delivery) { on_delivery(delivery); },
          options) {
  require(static_cast<bool>(app_deliver_),
          "FlushCoordinator: empty app deliver callback");
}

void FlushCoordinator::propose(const GroupView& new_view) {
  require(!target_.has_value(),
          "FlushCoordinator::propose: view change already in progress");
  require(new_view.id() == member_.view().id() + 1,
          "FlushCoordinator::propose: view id must be current + 1");
  require(new_view.contains(member_.id()),
          "FlushCoordinator::propose: proposer must remain a member");
  Writer payload;
  new_view.encode(payload);
  member_.osend("__vc_propose", payload.take(), DepSpec::none());
}

void FlushCoordinator::on_delivery(const Delivery& delivery) {
  if (delivery.label == "__vc_propose") {
    handle_propose(delivery);
    return;
  }
  if (delivery.label == "__vc_flush") {
    handle_flush(delivery);
    return;
  }
  if (delivery.label == "__vc_welcome") {
    handle_welcome(delivery);
    return;
  }
  app_deliver_(delivery);
  // Application deliveries advance the prefix; the install condition may
  // have just been met.
  if (target_.has_value()) {
    maybe_install();
  }
}

void FlushCoordinator::handle_propose(const Delivery& delivery) {
  Reader reader(delivery.payload);
  const GroupView proposed = GroupView::decode(reader);
  if (target_.has_value()) {
    protocol_ensure(proposed == *target_,
                    "FlushCoordinator: conflicting concurrent view proposals "
                    "(a single membership authority is required)");
    return;  // duplicate of the in-flight proposal
  }
  protocol_ensure(proposed.id() == member_.view().id() + 1,
                  "FlushCoordinator: proposal skips a view id");
  target_ = proposed;
  member_.suspend_sends();
  // Flush: advertise exactly what we have delivered from the old view.
  Writer payload;
  member_.delivered_prefix().encode(payload);
  member_.osend("__vc_flush", payload.take(), DepSpec::none());
  maybe_install();
}

void FlushCoordinator::handle_flush(const Delivery& delivery) {
  Reader reader(delivery.payload);
  VectorClock prefix = VectorClock::decode(reader);
  protocol_ensure(prefix.width() == member_.view().size(),
                  "FlushCoordinator: flush prefix width mismatch");
  flushed_[delivery.sender] = std::move(prefix);
  maybe_install();
}

void FlushCoordinator::maybe_install() {
  if (!target_.has_value()) {
    return;
  }
  // Copy: member_.view() is reassigned by install_view() below.
  const GroupView old_view = member_.view();
  if (flushed_.size() < old_view.size()) {
    return;  // not everyone has flushed yet
  }
  // Everything anyone had delivered, we must have delivered too.
  VectorClock needed(old_view.size());
  for (const auto& [sender, prefix] : flushed_) {
    needed.merge(prefix);
  }
  const VectorClock& mine = member_.delivered_prefix();
  for (std::size_t rank = 0; rank < old_view.size(); ++rank) {
    if (mine.at(static_cast<NodeId>(rank)) <
        needed.at(static_cast<NodeId>(rank))) {
      return;  // still missing old-view traffic
    }
  }
  const GroupView installed = *target_;
  target_.reset();
  flushed_.clear();
  if (!installed.contains(member_.id())) {
    // This member is the one leaving: it participated in the flush so the
    // survivors cut consistently, but it does not install the new view —
    // it stays suspended in the old view (its role in the group is over).
    return;
  }
  member_.install_view(installed);
  has_baseline_ = true;
  // Joiners were not part of the flush and will never receive old-view
  // traffic: hand them the join cut (our prefix right now, which equals
  // the flush's needed-vector at every survivor) as their baseline.
  bool has_joiner = false;
  for (const NodeId node : installed.members()) {
    if (!old_view.contains(node)) {
      has_joiner = true;
      break;
    }
  }
  if (has_joiner) {
    Writer payload;
    member_.delivered_prefix().encode(payload);
    // Optional application snapshot at the cut (identical at every
    // survivor: the cut state is the flush's agreement point).
    if (snapshot_) {
      payload.boolean(true);
      payload.blob(snapshot_());
    } else {
      payload.boolean(false);
    }
    member_.osend("__vc_welcome", payload.take(), DepSpec::none());
  }
  member_.resume_sends();
  if (on_view_) {
    on_view_(installed);
  }
}

void FlushCoordinator::handle_welcome(const Delivery& delivery) {
  if (has_baseline_) {
    return;  // we flushed through the change ourselves; nothing to adopt
  }
  Reader reader(delivery.payload);
  const VectorClock baseline = VectorClock::decode(reader);
  protocol_ensure(baseline.width() == member_.view().size(),
                  "FlushCoordinator: welcome width mismatch");
  has_baseline_ = true;
  member_.adopt_baseline(baseline);
  if (reader.boolean() && adopt_snapshot_) {
    const std::vector<std::uint8_t> snapshot = reader.blob();
    adopt_snapshot_(snapshot);
  }
}

void FlushCoordinator::enable_state_transfer(SnapshotFn snapshot,
                                             AdoptSnapshotFn adopt) {
  snapshot_ = std::move(snapshot);
  adopt_snapshot_ = std::move(adopt);
}

}  // namespace cbc
