#include "causal/flush.h"

#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

FlushCoordinator::FlushCoordinator(std::unique_ptr<ViewSyncMember> member,
                                   DeliverFn app_deliver,
                                   ViewInstalledFn on_view)
    : ProtocolLayer(std::move(member)), on_view_(std::move(on_view)) {
  require(static_cast<bool>(app_deliver),
          "FlushCoordinator: empty app deliver callback");
  sync_ = dynamic_cast<ViewSyncMember*>(&lower());
  ensure(sync_ != nullptr, "FlushCoordinator: lower member not flushable");
  set_deliver(std::move(app_deliver));
}

FlushCoordinator::FlushCoordinator(Transport& transport, const GroupView& view,
                                   DeliverFn app_deliver,
                                   ViewInstalledFn on_view,
                                   OSendMember::Options options)
    : FlushCoordinator(
          std::make_unique<OSendMember>(
              transport, view, [](const Delivery&) {}, options),
          std::move(app_deliver), std::move(on_view)) {}

void FlushCoordinator::propose(const GroupView& new_view) {
  require(!target_.has_value(),
          "FlushCoordinator::propose: view change already in progress");
  require(new_view.id() == sync_->view().id() + 1,
          "FlushCoordinator::propose: view id must be current + 1");
  require(new_view.contains(sync_->id()),
          "FlushCoordinator::propose: proposer must remain a member");
  Writer payload;
  new_view.encode(payload);
  sync_->broadcast("__vc_propose", payload.take(), DepSpec::none());
}

void FlushCoordinator::on_lower_delivery(const Delivery& delivery) {
  if (delivery.label() == "__vc_propose") {
    handle_propose(delivery);
    return;
  }
  if (delivery.label() == "__vc_flush") {
    handle_flush(delivery);
    return;
  }
  if (delivery.label() == "__vc_welcome") {
    handle_welcome(delivery);
    return;
  }
  deliver_up(delivery);
  // Application deliveries advance the prefix; the install condition may
  // have just been met.
  if (target_.has_value()) {
    maybe_install();
  }
}

void FlushCoordinator::handle_propose(const Delivery& delivery) {
  Reader reader(delivery.payload());
  const GroupView proposed = GroupView::decode(reader);
  if (target_.has_value()) {
    protocol_ensure(proposed == *target_,
                    "FlushCoordinator: conflicting concurrent view proposals "
                    "(a single membership authority is required)");
    return;  // duplicate of the in-flight proposal
  }
  protocol_ensure(proposed.id() == sync_->view().id() + 1,
                  "FlushCoordinator: proposal skips a view id");
  target_ = proposed;
  sync_->suspend_sends();
  // Flush: advertise exactly what we have delivered from the old view.
  Writer payload;
  sync_->delivered_prefix().encode(payload);
  sync_->broadcast("__vc_flush", payload.take(), DepSpec::none());
  maybe_install();
}

void FlushCoordinator::handle_flush(const Delivery& delivery) {
  Reader reader(delivery.payload());
  VectorClock prefix = VectorClock::decode(reader);
  protocol_ensure(prefix.width() == sync_->view().size(),
                  "FlushCoordinator: flush prefix width mismatch");
  flushed_[delivery.sender] = std::move(prefix);
  maybe_install();
}

void FlushCoordinator::maybe_install() {
  if (!target_.has_value()) {
    return;
  }
  // Copy: sync_->view() is reassigned by install_view() below.
  const GroupView old_view = sync_->view();
  if (flushed_.size() < old_view.size()) {
    return;  // not everyone has flushed yet
  }
  // Everything anyone had delivered, we must have delivered too.
  VectorClock needed(old_view.size());
  for (const auto& [sender, prefix] : flushed_) {
    needed.merge(prefix);
  }
  const VectorClock& mine = sync_->delivered_prefix();
  for (std::size_t rank = 0; rank < old_view.size(); ++rank) {
    if (mine.at(static_cast<NodeId>(rank)) <
        needed.at(static_cast<NodeId>(rank))) {
      return;  // still missing old-view traffic
    }
  }
  const GroupView installed = *target_;
  target_.reset();
  flushed_.clear();
  if (!installed.contains(sync_->id())) {
    // This member is the one leaving: it participated in the flush so the
    // survivors cut consistently, but it does not install the new view —
    // it stays suspended in the old view (its role in the group is over).
    return;
  }
  sync_->install_view(installed);
  has_baseline_ = true;
  // Joiners were not part of the flush and will never receive old-view
  // traffic: hand them the join cut (our prefix right now, which equals
  // the flush's needed-vector at every survivor) as their baseline.
  bool has_joiner = false;
  for (const NodeId node : installed.members()) {
    if (!old_view.contains(node)) {
      has_joiner = true;
      break;
    }
  }
  if (has_joiner) {
    Writer payload;
    sync_->delivered_prefix().encode(payload);
    // Optional application snapshot at the cut (identical at every
    // survivor: the cut state is the flush's agreement point).
    if (snapshot_) {
      payload.boolean(true);
      payload.blob(snapshot_());
    } else {
      payload.boolean(false);
    }
    sync_->broadcast("__vc_welcome", payload.take(), DepSpec::none());
  }
  sync_->resume_sends();
  if (on_view_) {
    on_view_(installed);
  }
}

void FlushCoordinator::handle_welcome(const Delivery& delivery) {
  if (has_baseline_) {
    return;  // we flushed through the change ourselves; nothing to adopt
  }
  Reader reader(delivery.payload());
  const VectorClock baseline = VectorClock::decode(reader);
  protocol_ensure(baseline.width() == sync_->view().size(),
                  "FlushCoordinator: welcome width mismatch");
  has_baseline_ = true;
  sync_->adopt_baseline(baseline);
  if (reader.boolean() && adopt_snapshot_) {
    const std::vector<std::uint8_t> snapshot = reader.blob();
    adopt_snapshot_(snapshot);
  }
}

void FlushCoordinator::enable_state_transfer(SnapshotFn snapshot,
                                             AdoptSnapshotFn adopt) {
  snapshot_ = std::move(snapshot);
  adopt_snapshot_ = std::move(adopt);
}

}  // namespace cbc
