// Delivery records and the common broadcast-member interface.
//
// Every ordering discipline in the library (OSend explicit-dependency
// causal, vector-clock causal, sequencer total, deterministic-merge total)
// presents the same surface: broadcast bytes with a label, get Delivery
// callbacks in an order that satisfies the discipline. Protocols above
// (replica, lock, appcons, flush) are written against this interface so
// any discipline can be composed under any upper protocol and benches can
// swap stacks without code changes.
//
// A Delivery wraps an immutable refcounted Envelope: copying a Delivery is
// a refcount bump plus a few scalar fields — the label, dependency set,
// and payload bytes are shared with the wire frame and never duplicated on
// the message path (hold-back queues, delivery logs, app callbacks).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "causal/envelope.h"
#include "graph/dep_spec.h"
#include "graph/message_id.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace cbc {

class GroupView;

/// One message as handed to the application by an ordering layer.
class Delivery {
 public:
  Delivery() = default;

  /// Adopts an envelope; id/sender/sent_at are mirrored from its header.
  explicit Delivery(Envelope envelope)
      : id(envelope.id()),
        sender(envelope.sender()),
        sent_at(envelope.sent_at()),
        envelope_(std::move(envelope)) {}

  /// Builds a delivery around a freshly encoded envelope — for tests and
  /// harnesses that feed upper layers without a wire protocol underneath.
  [[nodiscard]] static Delivery synthetic(MessageId id, std::string label,
                                          DepSpec deps,
                                          SimTime delivered_at = 0);

  MessageId id;                 ///< globally unique message id
  NodeId sender = kNoNode;      ///< originating member
  SimTime sent_at = 0;          ///< transport time at broadcast
  SimTime delivered_at = 0;     ///< transport time at delivery

  /// Application label (e.g. "inc"). Shared with the envelope unless an
  /// interposition layer rewrote it (override_label).
  [[nodiscard]] const std::string& label() const {
    return label_override_ ? *label_override_
                           : (envelope_.valid() ? envelope_.label() : empty_label());
  }

  /// Occurs_After set (empty for disciplines that don't carry one).
  [[nodiscard]] const DepSpec& deps() const {
    return envelope_.valid() ? envelope_.deps() : empty_deps();
  }

  /// Opaque application bytes — a view into the shared wire frame.
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return envelope_.valid() ? envelope_.payload()
                             : std::span<const std::uint8_t>{};
  }

  [[nodiscard]] const Envelope& envelope() const { return envelope_; }

  /// Rewrites the application-visible label without touching the shared
  /// envelope (used by label-mangling layers, e.g. scoped total order).
  void override_label(std::string label) { label_override_ = std::move(label); }

 private:
  static const std::string& empty_label();
  static const DepSpec& empty_deps();

  Envelope envelope_;
  std::optional<std::string> label_override_;
};

/// Application callback invoked exactly once per delivered message, in
/// the order chosen by the discipline.
using DeliverFn = std::function<void(const Delivery&)>;

/// Counters shared by all ordering-layer members.
struct OrderingStats {
  std::uint64_t broadcasts = 0;        ///< messages this member originated
  std::uint64_t received = 0;          ///< wire messages received
  std::uint64_t delivered = 0;         ///< messages handed to the app
  std::uint64_t held_back = 0;         ///< messages that waited in the
                                       ///< hold-back queue at least once
  std::uint64_t max_holdback_depth = 0;///< peak hold-back queue size
  std::uint64_t duplicates = 0;        ///< duplicate wire messages dropped
  std::uint64_t malformed = 0;         ///< undecodable wire messages dropped
                                       ///< (untrusted datagram input)
};

/// Common interface of one group member under some ordering discipline —
/// the bottom of every protocol stack. Upper layers (flush, replica, lock,
/// appcons) hold this interface, never a concrete discipline.
class BroadcastMember {
 public:
  virtual ~BroadcastMember() = default;

  /// This member's node id (== its transport endpoint id).
  [[nodiscard]] virtual NodeId id() const = 0;

  /// Broadcasts to the whole group. `deps` is honoured by disciplines
  /// that accept explicit dependencies and ignored by the others.
  /// Returns the new message's id.
  virtual MessageId broadcast(std::string label,
                              std::vector<std::uint8_t> payload,
                              const DepSpec& deps) = 0;

  /// Messages delivered so far, in delivery order.
  [[nodiscard]] virtual const std::vector<Delivery>& log() const = 0;

  [[nodiscard]] virtual const OrderingStats& stats() const = 0;

  /// The member's current group view.
  [[nodiscard]] virtual const GroupView& view() const = 0;

  /// Rebinds the upward delivery callback. Interposition layers splice
  /// themselves into a stack by capturing the member and installing their
  /// own handler (see stack/protocol_layer.h).
  virtual void set_deliver(DeliverFn deliver) = 0;

  /// The stack lock. broadcast() and the receive path take it
  /// (recursively — re-broadcasting from a deliver callback is fine).
  /// Layers built on top of a member guard their own externally-callable
  /// entry points with the SAME lock, so one stack has one lock and no
  /// ordering hazards. Needed only under ThreadTransport; uncontended
  /// (cheap) under SimTransport. Ranked kRankStack; helpers documented
  /// "must hold the stack lock" carry CBC_REQUIRES(stack_mutex()).
  [[nodiscard]] virtual RecursiveMutex& stack_mutex() const = 0;
};

/// Extracts just the ids of a delivery log (test/bench convenience).
[[nodiscard]] std::vector<MessageId> delivered_ids(
    const std::vector<Delivery>& log);

/// Extracts just the labels of a delivery log.
[[nodiscard]] std::vector<std::string> delivered_labels(
    const std::vector<Delivery>& log);

}  // namespace cbc
