// Delivery records and the common broadcast-member interface.
//
// Every ordering discipline in the library (OSend explicit-dependency
// causal, vector-clock causal, sequencer total, deterministic-merge total)
// presents the same surface: broadcast bytes with a label, get Delivery
// callbacks in an order that satisfies the discipline. Protocols above
// (replica, lock, appcons) are written against this interface so benches
// can swap disciplines under identical workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dep_spec.h"
#include "graph/message_id.h"
#include "util/types.h"

namespace cbc {

/// One message as handed to the application by an ordering layer.
struct Delivery {
  MessageId id;                       ///< globally unique message id
  NodeId sender = kNoNode;            ///< originating member
  std::string label;                  ///< application label (e.g. "inc")
  DepSpec deps;                       ///< Occurs_After set (empty for
                                      ///< disciplines that don't carry one)
  std::vector<std::uint8_t> payload;  ///< opaque application bytes
  SimTime sent_at = 0;                ///< transport time at broadcast
  SimTime delivered_at = 0;           ///< transport time at delivery
};

/// Application callback invoked exactly once per delivered message, in
/// the order chosen by the discipline.
using DeliverFn = std::function<void(const Delivery&)>;

/// Counters shared by all ordering-layer members.
struct OrderingStats {
  std::uint64_t broadcasts = 0;        ///< messages this member originated
  std::uint64_t received = 0;          ///< wire messages received
  std::uint64_t delivered = 0;         ///< messages handed to the app
  std::uint64_t held_back = 0;         ///< messages that waited in the
                                       ///< hold-back queue at least once
  std::uint64_t max_holdback_depth = 0;///< peak hold-back queue size
  std::uint64_t duplicates = 0;        ///< duplicate wire messages dropped
};

/// Common interface of one group member under some ordering discipline.
class BroadcastMember {
 public:
  virtual ~BroadcastMember() = default;

  /// This member's node id (== its transport endpoint id).
  [[nodiscard]] virtual NodeId id() const = 0;

  /// Broadcasts to the whole group. `deps` is honoured by disciplines
  /// that accept explicit dependencies and ignored by the others.
  /// Returns the new message's id.
  virtual MessageId broadcast(std::string label,
                              std::vector<std::uint8_t> payload,
                              const DepSpec& deps) = 0;

  /// Messages delivered so far, in delivery order.
  [[nodiscard]] virtual const std::vector<Delivery>& log() const = 0;

  [[nodiscard]] virtual const OrderingStats& stats() const = 0;
};

/// Extracts just the ids of a delivery log (test/bench convenience).
[[nodiscard]] std::vector<MessageId> delivered_ids(
    const std::vector<Delivery>& log);

/// Extracts just the labels of a delivery log.
[[nodiscard]] std::vector<std::string> delivered_labels(
    const std::vector<Delivery>& log);

}  // namespace cbc
