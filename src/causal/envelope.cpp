#include "causal/envelope.h"

#include "util/ensure.h"

namespace cbc {

void Envelope::encode_section(Writer& writer, MessageId id,
                              std::string_view label, const DepSpec& deps,
                              SimTime sent_at,
                              std::span<const std::uint8_t> payload) {
  id.encode(writer);
  writer.str(label);
  deps.encode(writer);
  writer.i64(sent_at);
  writer.blob(payload);
}

Envelope Envelope::parse(SharedBuffer frame, std::size_t offset) {
  require(frame != nullptr, "Envelope::parse: null frame");
  require(offset <= frame->size(), "Envelope::parse: offset past frame end");
  // parse() throws SerdeError by documented contract; every receive-path
  // caller establishes the drop-and-count guard around it.
  Reader reader(frame->bytes().subspan(offset));  // cbc-lint: disable=L2
  auto rec = std::make_shared<Record>();
  rec->id = MessageId::decode(reader);
  rec->label = reader.str();
  rec->deps = DepSpec::decode(reader);
  rec->sent_at = reader.i64();
  const std::span<const std::uint8_t> payload = reader.blob_view();
  rec->payload_length = payload.size();
  rec->payload_offset =
      payload.empty() ? offset + reader.position()
                      : static_cast<std::size_t>(payload.data() - frame->data());
  rec->section_offset = offset;
  rec->section_length = reader.position();
  rec->frame = std::move(frame);
  return Envelope(std::move(rec));
}

std::span<const std::uint8_t> Envelope::payload() const {
  const Record& r = rec();
  return r.frame->bytes().subspan(r.payload_offset, r.payload_length);
}

std::span<const std::uint8_t> Envelope::section_bytes() const {
  const Record& r = rec();
  return r.frame->bytes().subspan(r.section_offset, r.section_length);
}

const Envelope::Record& Envelope::rec() const {
  ensure(rec_ != nullptr, "Envelope: access to a null envelope");
  return *rec_;
}

}  // namespace cbc
