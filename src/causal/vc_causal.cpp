#include "causal/vc_causal.h"

#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

VcCausalMember::VcCausalMember(Transport& transport, const GroupView& view,
                               DeliverFn deliver, Options options)
    : transport_(transport),
      view_(view),
      deliver_(std::move(deliver)),
      endpoint_(
          transport,
          [this](NodeId from, const WireFrame& frame) {
            on_receive(from, frame);
          },
          options.reliability),
      clock_(view.size()) {
  require(static_cast<bool>(deliver_), "VcCausalMember: empty deliver callback");
  require(view_.contains(endpoint_.id()),
          "VcCausalMember: transport id not in the group view");
}

void VcCausalMember::set_deliver(DeliverFn deliver) {
  const LockGuard guard(mutex_);
  require(static_cast<bool>(deliver), "VcCausalMember: empty deliver callback");
  deliver_ = std::move(deliver);
}

MessageId VcCausalMember::broadcast(std::string label,
                                    std::vector<std::uint8_t> payload,
                                    const DepSpec& /*deps*/) {
  const LockGuard guard(mutex_);
  const auto self_rank = view_.rank_of(id());
  ensure(self_rank.has_value(), "VcCausalMember: self not in view");
  const MessageId message_id{id(), next_seq_++};

  // Stamp: increment own entry first (this send is the next local event).
  clock_.tick(static_cast<NodeId>(*self_rank));
  stats_.broadcasts += 1;

  Writer writer;
  clock_.encode(writer);
  const std::size_t section_offset = writer.size();
  Envelope::encode_section(writer, message_id, label, DepSpec::none(),
                           transport_.now_us(), payload);
  const SharedBuffer frame = writer.take_shared();
  for (const NodeId member : view_.members()) {
    if (member != id()) {
      endpoint_.send(member, frame);
    }
  }
  // The sender delivers its own message immediately (its clock already
  // reflects it).
  seen_.insert(message_id);
  Delivery delivery(Envelope::parse(frame, section_offset));
  delivery.delivered_at = transport_.now_us();
  log_.push_back(std::move(delivery));
  stats_.delivered += 1;
  deliver_(log_.back());
  return message_id;
}

void VcCausalMember::on_receive(NodeId from, const WireFrame& frame) {
  const LockGuard guard(mutex_);
  // Wire bytes are untrusted: a frame that does not decode is counted and
  // dropped, never allowed to tear down the receive path.
  VectorClock timestamp;
  Delivery delivery;
  try {
    Reader reader(frame.bytes());
    timestamp = VectorClock::decode(reader);
    delivery = Delivery(
        Envelope::parse(frame.buffer, frame.offset + reader.position()));
  } catch (const SerdeError&) {
    stats_.malformed += 1;
    return;
  }
  stats_.received += 1;

  if (seen_.count(delivery.id) != 0) {
    stats_.duplicates += 1;
    return;
  }
  seen_.insert(delivery.id);

  const auto sender_rank = view_.rank_of(from);
  protocol_ensure(sender_rank.has_value(),
                  "CBCAST: wire message from outside the view");
  protocol_ensure(timestamp.width() == view_.size(),
                  "CBCAST: timestamp width mismatch");

  if (deliverable(timestamp, *sender_rank)) {
    deliver_now(std::move(delivery), timestamp, *sender_rank);
    scan_holdback();
  } else {
    stats_.held_back += 1;
    holdback_.push_back(HeldMessage{std::move(delivery), std::move(timestamp)});
    stats_.max_holdback_depth =
        std::max<std::uint64_t>(stats_.max_holdback_depth, holdback_.size());
  }
}

bool VcCausalMember::deliverable(const VectorClock& timestamp,
                                 std::size_t sender_rank) const {
  for (std::size_t k = 0; k < view_.size(); ++k) {
    const std::uint64_t needed = (k == sender_rank)
                                     ? clock_.at(static_cast<NodeId>(k)) + 1
                                     : clock_.at(static_cast<NodeId>(k));
    if (k == sender_rank) {
      if (timestamp.at(static_cast<NodeId>(k)) != needed) {
        return false;
      }
    } else if (timestamp.at(static_cast<NodeId>(k)) > needed) {
      return false;
    }
  }
  return true;
}

void VcCausalMember::deliver_now(Delivery delivery, const VectorClock& timestamp,
                                 std::size_t sender_rank) {
  clock_.set(static_cast<NodeId>(sender_rank),
             timestamp.at(static_cast<NodeId>(sender_rank)));
  delivery.delivered_at = transport_.now_us();
  log_.push_back(std::move(delivery));
  stats_.delivered += 1;
  deliver_(log_.back());
}

void VcCausalMember::scan_holdback() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      const auto sender_rank = view_.rank_of(it->delivery.sender);
      ensure(sender_rank.has_value(), "CBCAST: held message from outside view");
      if (deliverable(it->timestamp, *sender_rank)) {
        HeldMessage held = std::move(*it);
        holdback_.erase(it);
        deliver_now(std::move(held.delivery), held.timestamp, *sender_rank);
        progressed = true;
        break;  // iterator invalidated; rescan
      }
    }
  }
}

}  // namespace cbc
