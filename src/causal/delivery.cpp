#include "causal/delivery.h"

namespace cbc {

std::vector<MessageId> delivered_ids(const std::vector<Delivery>& log) {
  std::vector<MessageId> out;
  out.reserve(log.size());
  for (const Delivery& delivery : log) {
    out.push_back(delivery.id);
  }
  return out;
}

std::vector<std::string> delivered_labels(const std::vector<Delivery>& log) {
  std::vector<std::string> out;
  out.reserve(log.size());
  for (const Delivery& delivery : log) {
    out.push_back(delivery.label);
  }
  return out;
}

}  // namespace cbc
