#include "causal/delivery.h"

#include "util/serde.h"

namespace cbc {

Delivery Delivery::synthetic(MessageId id, std::string label, DepSpec deps,
                             SimTime delivered_at) {
  Writer writer;
  Envelope::encode_section(writer, id, label, deps, /*sent_at=*/0,
                           /*payload=*/{});
  Delivery delivery{Envelope::parse(writer.take_shared(), 0)};
  delivery.delivered_at = delivered_at;
  return delivery;
}

const std::string& Delivery::empty_label() {
  static const std::string kEmpty;
  return kEmpty;
}

const DepSpec& Delivery::empty_deps() {
  static const DepSpec kNone;
  return kNone;
}

std::vector<MessageId> delivered_ids(const std::vector<Delivery>& log) {
  std::vector<MessageId> out;
  out.reserve(log.size());
  for (const Delivery& delivery : log) {
    out.push_back(delivery.id);
  }
  return out;
}

std::vector<std::string> delivered_labels(const std::vector<Delivery>& log) {
  std::vector<std::string> out;
  out.reserve(log.size());
  for (const Delivery& delivery : log) {
    out.push_back(delivery.label());
  }
  return out;
}

}  // namespace cbc
