// Loss-recovery layer: reliable, duplicate-free (but unordered) delivery.
//
// The paper's ordering layers assume every message eventually reaches
// every member ("the dependency is a stable information ... eventually
// satisfiable at all members", §3.1). ReliableEndpoint provides exactly
// that guarantee over a lossy/duplicating transport — and nothing more:
// it deliberately delivers out of order, leaving reordering visible to
// the causal/total layers whose job it is to mask it.
//
// Mechanism:
//  - per (source, destination) link sequence numbers; receivers dedupe and
//    track the contiguous prefix + a sparse set above it;
//  - receivers with detected gaps periodically send control frames
//    carrying (cumulative ack, missing list) — fast NACK recovery;
//  - senders with unacked data periodically retransmit it — this covers
//    dropped *tail* messages that no gap would ever reveal;
//  - receivers ack duplicates immediately so retransmission converges.
// All timers are armed only while their condition holds, so a quiescent
// system schedules no events (required for Scheduler::run() to finish).
//
// Zero-copy: the 9-byte data header [u8 type][u64 seq] is prepended once
// when the data frame is built; the retransmit buffer stores that same
// SharedBuffer, and receivers hand the payload upward as a sub-frame of
// the arrived buffer. The only copy on the reliable path is the single
// header-prepend encode at first send.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/transport.h"
#include "util/buffer.h"
#include "util/types.h"

namespace cbc {

/// Reliability statistics for one endpoint.
struct ReliableStats {
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t control_frames = 0;
  /// Frames dropped because they could not be parsed (truncated, unknown
  /// type, or a sequence number beyond the forward window). On a real
  /// datagram transport these are untrusted bytes — dropped, never fatal.
  std::uint64_t malformed_frames = 0;
};

/// One member's reliable link bundle over a Transport.
///
/// Thread-safety: all state is guarded by one mutex, so the endpoint works
/// under both SimTransport (single-threaded) and ThreadTransport (handler
/// and timer threads). The upward handler is invoked without the lock held.
class ReliableEndpoint {
 public:
  using Handler = std::function<void(NodeId from, const WireFrame& frame)>;

  struct Options {
    SimTime control_interval_us = 2000;  ///< NACK-scan / delayed-ack period
    /// Sender-side retransmit period for unacked data. Must comfortably
    /// exceed one round trip plus the receiver's delayed-ack interval or
    /// healthy traffic is retransmitted spuriously. 0 means
    /// 5 * control_interval_us.
    SimTime retransmit_interval_us = 0;
    bool enabled = true;  ///< false: pass-through (zero overhead on a
                          ///< loss-free transport such as default sim runs)
    /// Cap on the missing-seq list of one control frame. Bounds both the
    /// frame size and the scan cost when a corrupt sequence number opens a
    /// huge apparent gap; the remainder is NACKed on later scans.
    std::size_t max_nack_entries = 512;
    /// Cap on data frames retransmitted per sender-timer tick (lowest
    /// sequence numbers first). Keeps a dead peer from turning the
    /// retransmit timer into a line-rate traffic storm.
    std::size_t max_retransmit_burst = 64;
    /// Data frames whose seq jumps more than this far past the contiguous
    /// prefix are counted malformed and dropped: a genuine sender can only
    /// run ahead by what it has actually sent, so a larger jump is a
    /// corrupt or forged header that would poison gap tracking.
    SeqNo max_forward_window = 1u << 20;
    /// Observability sinks (metrics collector for ReliableStats plus
    /// retransmit/duplicate trace instants). Default: off.
    obs::Hooks obs{};
  };

  /// Registers an endpoint on `transport` (which must outlive this).
  ReliableEndpoint(Transport& transport, Handler handler)
      : ReliableEndpoint(transport, std::move(handler), Options{}) {}
  ReliableEndpoint(Transport& transport, Handler handler, Options options);

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// This endpoint's transport id.
  [[nodiscard]] NodeId id() const { return id_; }

  /// Sends `payload` reliably to `to`.
  void send(NodeId to, SharedBuffer payload);
  void send(NodeId to, std::vector<std::uint8_t> payload) {
    send(to, make_buffer(std::move(payload)));
  }

  [[nodiscard]] ReliableStats stats() const;

 private:
  enum class FrameType : std::uint8_t { kData = 1, kControl = 2 };

  /// Bytes of the [u8 type][u64 seq] prefix of a data frame.
  static constexpr std::size_t kDataHeaderBytes = 9;

  struct PeerSendState {
    SeqNo next_seq = 1;
    std::map<SeqNo, SharedBuffer> unacked;  // seq -> full data frame
  };
  struct PeerRecvState {
    SeqNo contiguous = 0;   // all seqs <= contiguous received
    SeqNo last_acked = 0;   // contiguous value last sent in a control frame
    std::set<SeqNo> above;  // received seqs > contiguous
    [[nodiscard]] bool has_gap() const {
      return !above.empty() && *above.begin() != contiguous + 1;
    }
    [[nodiscard]] bool ack_pending() const { return contiguous > last_acked; }
  };

  void on_frame(NodeId from, const WireFrame& frame);
  /// Builds the framed [header][payload] buffer for one data message.
  [[nodiscard]] SharedBuffer make_data_frame(SeqNo seq,
                                             const SharedBuffer& payload) const;
  /// Control frame to `source` with our cumulative ack + missing seqs.
  void send_control_frame(NodeId source);
  void on_sender_timer();
  void on_receiver_timer();
  // Both must be called with mutex_ held; they arm at most one timer each.
  void maybe_arm_sender_timer();
  void maybe_arm_receiver_timer();

  Transport& transport_;
  Handler handler_;
  Options options_;
  NodeId id_ = kNoNode;

  mutable std::mutex mutex_;
  std::map<NodeId, PeerSendState> send_state_;
  std::map<NodeId, PeerRecvState> recv_state_;
  bool sender_timer_armed_ = false;
  bool receiver_timer_armed_ = false;
  ReliableStats stats_;
  // Last member: unregisters before the stats it reads are torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc
