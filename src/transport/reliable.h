// Loss-recovery layer: reliable, duplicate-free (but unordered) delivery.
//
// The paper's ordering layers assume every message eventually reaches
// every member ("the dependency is a stable information ... eventually
// satisfiable at all members", §3.1). ReliableEndpoint provides exactly
// that guarantee over a lossy/duplicating transport — and nothing more:
// it deliberately delivers out of order, leaving reordering visible to
// the causal/total layers whose job it is to mask it.
//
// Mechanism:
//  - per (source, destination) link sequence numbers; receivers dedupe and
//    track the contiguous prefix + a sparse set above it;
//  - receivers with detected gaps periodically send control frames
//    carrying (cumulative ack, missing list) — fast NACK recovery;
//  - senders with unacked data periodically retransmit it — this covers
//    dropped *tail* messages that no gap would ever reveal;
//  - receivers ack duplicates immediately so retransmission converges;
//  - retransmits toward a silent peer back off exponentially (with
//    deterministic jitter) up to max_retransmit_interval_us, so a dead
//    peer degrades to a trickle instead of a fixed-period storm;
//  - an opt-in heartbeat failure detector: liveness is piggybacked on any
//    received frame, an explicit kHeartbeat covers idle links, and peers
//    silent past suspect_after_us raise suspect/alive events;
//  - a restarted receiver whose window predates what the sender still
//    retains is fast-forwarded by a kWindowBase frame (crash recovery:
//    everything below the sender's retained window was acked by the old
//    incarnation, hence covered by the recovery baseline).
// All timers except the (opt-in) liveness timer are armed only while their
// condition holds, so a quiescent system schedules no events (required for
// Scheduler::run() to finish).
//
// Zero-copy: the 9-byte data header [u8 type][u64 seq] is prepended once
// when the data frame is built; the retransmit buffer stores that same
// SharedBuffer, and receivers hand the payload upward as a sub-frame of
// the arrived buffer. The only copy on the reliable path is the single
// header-prepend encode at first send.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/transport.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace cbc {

/// Reliability statistics for one endpoint.
struct ReliableStats {
  std::uint64_t data_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t control_frames = 0;
  /// Frames dropped because they could not be parsed (truncated, unknown
  /// type, or a sequence number beyond the forward window). On a real
  /// datagram transport these are untrusted bytes — dropped, never fatal.
  std::uint64_t malformed_frames = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t suspect_events = 0;  ///< peers newly marked suspected
  std::uint64_t alive_events = 0;    ///< suspected peers heard from again
  /// Receive windows fast-forwarded by a sender's kWindowBase frame (a
  /// restarted receiver skipping history the sender no longer retains).
  std::uint64_t window_resyncs = 0;
  /// Peers whose retransmit backoff reached max_retransmit_interval_us.
  std::uint64_t peer_unresponsive_events = 0;
  std::uint64_t oob_frames = 0;  ///< out-of-band frames received
  /// Unacked data frames dropped toward suspected-dead peers once the
  /// retention cap kicked in (rejoin is covered by checkpoint transfer).
  std::uint64_t retained_capped = 0;
  /// Pairwise clock-offset samples completed (heartbeat echo round trips).
  std::uint64_t clock_samples = 0;
};

/// One peer's estimated clock relation, from NTP-style timestamp echoes
/// piggybacked on the liveness heartbeats (see on_liveness_timer):
/// `offset_us` is (peer wall clock − local wall clock), EWMA-smoothed;
/// `rtt_us` is the matching round-trip estimate.
struct ClockOffset {
  double offset_us = 0.0;
  double rtt_us = 0.0;
  std::uint64_t samples = 0;
};

/// One member's reliable link bundle over a Transport.
///
/// Thread-safety: all state is guarded by one mutex, so the endpoint works
/// under both SimTransport (single-threaded) and ThreadTransport (handler
/// and timer threads). The upward handler is invoked without the lock held.
class ReliableEndpoint {
 public:
  using Handler = std::function<void(NodeId from, const WireFrame& frame)>;

  struct Options {
    SimTime control_interval_us = 2000;  ///< NACK-scan / delayed-ack period
    /// Sender-side retransmit period for unacked data. Must comfortably
    /// exceed one round trip plus the receiver's delayed-ack interval or
    /// healthy traffic is retransmitted spuriously. 0 means
    /// 5 * control_interval_us.
    SimTime retransmit_interval_us = 0;
    /// Ceiling for the per-peer exponential retransmit backoff: a peer
    /// that keeps ignoring retransmits doubles its interval (with jitter)
    /// from retransmit_interval_us up to this cap, so a dead peer degrades
    /// to a trickle instead of a fixed-period storm. 0 means
    /// 16 * retransmit_interval_us.
    SimTime max_retransmit_interval_us = 0;
    /// Explicit idle-link heartbeat period; liveness is otherwise
    /// piggybacked on data/control traffic. 0 disables heartbeats (and,
    /// with suspect_after_us = 0, the whole failure detector — the default,
    /// so quiescent sim runs schedule no periodic events). When only
    /// suspect_after_us is set, defaults to suspect_after_us / 4.
    SimTime heartbeat_interval_us = 0;
    /// A monitored peer not heard from (any frame) for this long is marked
    /// suspected; `on_liveness(peer, false)` fires, and `(peer, true)` when
    /// it is heard from again. 0 disables the failure detector.
    SimTime suspect_after_us = 0;
    /// Suspect/alive transitions for monitored peers (see monitor_peers).
    /// Invoked without the endpoint lock held, on a transport thread.
    std::function<void(NodeId peer, bool alive)> on_liveness{};
    /// Fired once per silence episode when a peer's retransmit backoff
    /// first reaches the cap. Invoked without the lock held.
    std::function<void(NodeId peer)> on_peer_unresponsive{};
    /// Receiver of out-of-band frames (kOob) — unsequenced, unreliable
    /// payloads riding the same endpoint (e.g. state-transfer request/
    /// response). Invoked without the lock held; unset means oob frames
    /// are counted and dropped.
    std::function<void(NodeId from, std::span<const std::uint8_t> payload)>
        oob_handler{};
    /// Seed of the retransmit-jitter stream (deterministic backoff).
    std::uint64_t backoff_seed = 0xB0FFULL;
    bool enabled = true;  ///< false: pass-through (zero overhead on a
                          ///< loss-free transport such as default sim runs)
    /// Cap on the missing-seq list of one control frame. Bounds both the
    /// frame size and the scan cost when a corrupt sequence number opens a
    /// huge apparent gap; the remainder is NACKed on later scans.
    std::size_t max_nack_entries = 512;
    /// Cap on data frames retransmitted per sender-timer tick (lowest
    /// sequence numbers first). Keeps a dead peer from turning the
    /// retransmit timer into a line-rate traffic storm.
    std::size_t max_retransmit_burst = 64;
    /// Data frames whose seq jumps more than this far past the contiguous
    /// prefix are counted malformed and dropped: a genuine sender can only
    /// run ahead by what it has actually sent, so a larger jump is a
    /// corrupt or forged header that would poison gap tracking.
    SeqNo max_forward_window = 1u << 20;
    /// Extra grace past suspect_after_us before unacked retention toward
    /// a suspected peer is capped (see max_retained_per_dead_peer).
    SimTime dead_peer_grace_us = 0;
    /// Cap on data frames retained for a peer that has been suspected for
    /// longer than suspect_after_us + dead_peer_grace_us: older frames
    /// beyond the cap are dropped (lowest seqs first) and counted in
    /// ReliableStats::retained_capped — a rejoining incarnation recovers
    /// them from checkpoint/state transfer, not retransmission. 0 keeps
    /// today's unbounded retention.
    std::size_t max_retained_per_dead_peer = 0;
    /// Observability sinks (metrics collector for ReliableStats plus
    /// retransmit/duplicate trace instants). Default: off.
    obs::Hooks obs{};
  };

  /// Registers an endpoint on `transport` (which must outlive this).
  ReliableEndpoint(Transport& transport, Handler handler)
      : ReliableEndpoint(transport, std::move(handler), Options{}) {}
  ReliableEndpoint(Transport& transport, Handler handler, Options options);

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  /// This endpoint's transport id.
  [[nodiscard]] NodeId id() const { return id_; }

  /// Sends `payload` reliably to `to`.
  void send(NodeId to, SharedBuffer payload);
  void send(NodeId to, std::vector<std::uint8_t> payload) {
    send(to, make_buffer(std::move(payload)));
  }

  /// Sends an out-of-band frame: unsequenced, unacked, not retransmitted.
  /// The peer's oob_handler (if set) receives the payload. Carrier for
  /// pre-stack exchanges such as state transfer.
  void send_oob(NodeId to, std::span<const std::uint8_t> payload);

  /// Starts liveness monitoring of `peers` (requires suspect_after_us
  /// > 0). Each peer starts alive with `last heard = now`; a
  /// `<prefix>.peer_alive.<id>` gauge is exported per peer when metrics
  /// are attached. Call once, after construction.
  void monitor_peers(const std::vector<NodeId>& peers);

  /// Currently suspected peers (monitored, silent past the timeout).
  [[nodiscard]] std::vector<NodeId> suspected_peers() const;

  /// Current pairwise clock-offset estimates (monitored peers that have
  /// completed at least one heartbeat echo round trip). Exported as
  /// `clock.offset_us.<peer>` / `clock.rtt_us.<peer>` gauges when
  /// metrics are attached, and emitted as `clock_offset` trace instants
  /// so `cbc_trace_merge --align` can shift node timelines onto one
  /// clock.
  [[nodiscard]] std::map<NodeId, ClockOffset> clock_offsets() const;

  /// Fast-forwards every per-link send sequence to at least `next_seq`
  /// (existing links and links created later). Recovery hook: a member
  /// restored from a checkpoint re-enters with the link sequence its old
  /// incarnation had reached, so receivers' contiguous windows line up.
  void fast_forward_send_seq(SeqNo next_seq);

  /// Caps the cumulative ack advertised to `peer` at `ceiling`. Frames
  /// above the ceiling are still received, delivered, and dup-suppressed —
  /// but never acknowledged, so the sender retains (and keeps
  /// retransmitting) them. Checkpointing nodes advance the ceiling to the
  /// persisted frontier after every flush: anything this node ever acked
  /// is then recoverable from its own checkpoint, so a crash between
  /// stable points cannot lose frames the senders already released.
  /// Raising the ceiling emits an immediate control frame so senders can
  /// prune promptly.
  void set_ack_ceiling(NodeId peer, SeqNo ceiling);

  /// Total data frames awaiting acknowledgement across all links (0 on a
  /// fully-acked endpoint — the safe moment to crash in tests).
  [[nodiscard]] std::size_t unacked_total() const;

  [[nodiscard]] ReliableStats stats() const;

  /// Wire value of the out-of-band frame type ([u8 kOobFrameType][payload]
  /// with no other header) — public so pre-stack bootstrap code can craft
  /// and parse oob frames without an endpoint.
  static constexpr std::uint8_t kOobFrameType = 5;

 private:
  enum class FrameType : std::uint8_t {
    kData = 1,
    kControl = 2,
    // [u8][i64 t_origin][i64 echo_origin][i64 echo_rx] — explicit
    // liveness when a link idles. The three wall-clock timestamps are the
    // clock-offset piggyback (NTP-style: my send time plus an echo of
    // your last heartbeat's send/receive pair); legacy peers sent a bare
    // [u8] and receivers still accept that — trailing fields are
    // optional on parse.
    kHeartbeat = 3,
    kWindowBase = 4,   // [u8][u64 base] — lowest seq the sender retains
    kOob = kOobFrameType,  // [u8][payload] — out-of-band passthrough
  };

  /// Bytes of the [u8 type][u64 seq] prefix of a data frame.
  static constexpr std::size_t kDataHeaderBytes = 9;

  struct PeerSendState {
    SeqNo next_seq = 1;
    std::map<SeqNo, SharedBuffer> unacked;  // seq -> full data frame
    /// Exponential-backoff state: current interval (0 = base) and the
    /// absolute time this link's next retransmit is allowed.
    SimTime backoff_us = 0;
    SimTime next_retransmit_us = 0;
    bool unresponsive_reported = false;
  };
  struct PeerLiveness {
    SimTime last_heard_us = 0;
    SimTime last_sent_us = 0;
    bool suspected = false;
    obs::Gauge* alive_gauge = nullptr;
  };
  /// Clock-offset estimation state for one monitored peer.
  struct PeerClock {
    /// Send timestamp inside the peer's last heartbeat, and the local
    /// wall clock when it arrived — echoed back in our next heartbeat.
    std::int64_t last_rx_origin_us = 0;
    std::int64_t last_rx_wall_us = 0;
    ClockOffset estimate;
    obs::Gauge* offset_gauge = nullptr;
    obs::Gauge* rtt_gauge = nullptr;
  };
  struct PeerRecvState {
    SeqNo contiguous = 0;   // all seqs <= contiguous received
    SeqNo last_acked = 0;   // contiguous value last sent in a control frame
    /// Highest seq this node may acknowledge (see set_ack_ceiling).
    SeqNo ack_ceiling = ~static_cast<SeqNo>(0);
    std::set<SeqNo> above;  // received seqs > contiguous
    [[nodiscard]] bool has_gap() const {
      return !above.empty() && *above.begin() != contiguous + 1;
    }
    [[nodiscard]] bool ack_pending() const { return contiguous > last_acked; }
  };

  void on_frame(NodeId from, const WireFrame& frame);
  /// Folds one completed heartbeat echo (t1 our send, t2 peer rx, t3
  /// peer send, t4 our rx — wall-clock micros) into the peer's offset
  /// estimate. Returns true when the estimate changed (caller emits the
  /// clock_offset trace instant after releasing the lock).
  bool update_clock_offset(NodeId from, std::int64_t t1, std::int64_t t2,
                           std::int64_t t3, std::int64_t t4)
      CBC_REQUIRES(mutex_);
  /// Builds the framed [header][payload] buffer for one data message.
  [[nodiscard]] SharedBuffer make_data_frame(SeqNo seq,
                                             const SharedBuffer& payload) const;
  /// Control frame to `source` with our cumulative ack + missing seqs.
  void send_control_frame(NodeId source);
  void on_sender_timer();
  void on_receiver_timer();
  void on_liveness_timer();
  // All three arm at most one timer each.
  void maybe_arm_sender_timer() CBC_REQUIRES(mutex_);
  void maybe_arm_receiver_timer() CBC_REQUIRES(mutex_);
  void maybe_arm_liveness_timer() CBC_REQUIRES(mutex_);
  /// Notes an incoming frame from `from`; returns true when that flips a
  /// suspected peer back to alive (caller fires on_liveness(from, true)
  /// after releasing the lock).
  bool note_heard(NodeId from, SimTime now) CBC_REQUIRES(mutex_);
  /// Notes outgoing traffic toward `to` (suppresses the explicit
  /// heartbeat while the link is busy).
  void note_sent(NodeId to, SimTime now) CBC_REQUIRES(mutex_);
  /// Advances one link's backoff after a retransmit pass; returns true
  /// when the cap was newly reached (caller fires on_peer_unresponsive
  /// after releasing the lock).
  bool schedule_next_retransmit(PeerSendState& peer, SimTime now)
      CBC_REQUIRES(mutex_);
  /// Enforces max_retained_per_dead_peer for one long-suspected peer:
  /// drops the oldest unacked frames beyond the cap. Returns frames
  /// dropped (counted into retained_capped by the caller's tally).
  std::size_t cap_dead_peer_retention(PeerSendState& peer)
      CBC_REQUIRES(mutex_);

  Transport& transport_;
  Handler handler_;
  Options options_;
  NodeId id_ = kNoNode;

  mutable Mutex mutex_{kRankReliable, "reliable link state"};
  std::map<NodeId, PeerSendState> send_state_ CBC_GUARDED_BY(mutex_);
  std::map<NodeId, PeerRecvState> recv_state_ CBC_GUARDED_BY(mutex_);
  std::map<NodeId, PeerLiveness> liveness_ CBC_GUARDED_BY(mutex_);
  std::map<NodeId, PeerClock> clocks_ CBC_GUARDED_BY(mutex_);
  Rng backoff_rng_ CBC_GUARDED_BY(mutex_){0};
  // fast_forward floor for lazily-made links
  SeqNo send_seq_floor_ CBC_GUARDED_BY(mutex_) = 1;
  bool sender_timer_armed_ CBC_GUARDED_BY(mutex_) = false;
  SimTime sender_timer_deadline_ CBC_GUARDED_BY(mutex_) = 0;
  bool receiver_timer_armed_ CBC_GUARDED_BY(mutex_) = false;
  bool liveness_timer_armed_ CBC_GUARDED_BY(mutex_) = false;
  ReliableStats stats_ CBC_GUARDED_BY(mutex_);
  // Last member: unregisters before the stats it reads are torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc
