// Transport adapter over the discrete-event SimNetwork.
#pragma once

#include <functional>

#include "sim/network.h"
#include "transport/transport.h"

namespace cbc {

/// Deterministic transport: every delivery and timer runs inside the
/// owning Scheduler's single-threaded event loop. Not thread-safe (by
/// design — determinism is the point).
class SimTransport final : public Transport {
 public:
  /// Borrows `network`; the network (and its scheduler) must outlive this.
  explicit SimTransport(sim::SimNetwork& network) : network_(network) {}

  NodeId add_endpoint(Handler handler) override {
    return network_.add_node(std::move(handler));
  }

  [[nodiscard]] std::size_t endpoint_count() const override {
    return network_.node_count();
  }

  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override {
    network_.send(from, to, std::move(frame));
  }

  void schedule(SimTime delay_us, std::function<void()> action) override {
    network_.scheduler().after(delay_us, std::move(action));
  }

  [[nodiscard]] SimTime now_us() const override;

  [[nodiscard]] sim::SimNetwork& network() { return network_; }

 private:
  sim::SimNetwork& network_;
};

}  // namespace cbc
