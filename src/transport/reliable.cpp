#include "transport/reliable.h"

#include <algorithm>

#include "check/lock_order.h"
#include "obs/trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

ReliableEndpoint::ReliableEndpoint(Transport& transport, Handler handler,
                                   Options options)
    : transport_(transport), handler_(std::move(handler)), options_(options) {
  require(static_cast<bool>(handler_), "ReliableEndpoint: empty handler");
  require(options_.control_interval_us > 0,
          "ReliableEndpoint: control interval must be positive");
  if (options_.retransmit_interval_us == 0) {
    options_.retransmit_interval_us = 5 * options_.control_interval_us;
  }
  require(options_.retransmit_interval_us > 0,
          "ReliableEndpoint: retransmit interval must be positive");
  require(options_.max_nack_entries > 0,
          "ReliableEndpoint: max_nack_entries must be positive");
  require(options_.max_retransmit_burst > 0,
          "ReliableEndpoint: max_retransmit_burst must be positive");
  require(options_.max_forward_window > 0,
          "ReliableEndpoint: max_forward_window must be positive");
  id_ = transport_.add_endpoint([this](NodeId from, const WireFrame& frame) {
    on_frame(from, frame);
  });
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "reliable";
  }
  if (options_.obs.has_metrics()) {
    // Scrape-time migration of ReliableStats onto the registry: the
    // legacy struct stays the storage (stats() accessors keep working);
    // the collector reads it under the endpoint lock when scraped.
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const ReliableStats s = stats();
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".data_sent", s.data_sent);
          sink.counter(prefix + ".data_delivered", s.data_delivered);
          sink.counter(prefix + ".duplicates_suppressed",
                       s.duplicates_suppressed);
          sink.counter(prefix + ".retransmissions", s.retransmissions);
          sink.counter(prefix + ".control_frames", s.control_frames);
          sink.counter(prefix + ".malformed_frames", s.malformed_frames);
        });
  }
}

void ReliableEndpoint::send(NodeId to, SharedBuffer payload) {
  require(payload != nullptr, "ReliableEndpoint::send: null payload");
  if (!options_.enabled) {
    transport_.send(id_, to, std::move(payload));
    return;
  }
  SharedBuffer frame;
  {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    PeerSendState& peer = send_state_[to];
    const SeqNo seq = peer.next_seq++;
    frame = make_data_frame(seq, payload);
    peer.unacked.emplace(seq, frame);
    stats_.data_sent += 1;
    maybe_arm_sender_timer();
  }
  transport_.send(id_, to, std::move(frame));
}

SharedBuffer ReliableEndpoint::make_data_frame(
    SeqNo seq, const SharedBuffer& payload) const {
  // The one copy on the reliable path: prefixing the header forces a fresh
  // allocation. The result is shared by the first send and all retransmits.
  Writer frame;
  frame.u8(static_cast<std::uint8_t>(FrameType::kData));
  frame.u64(seq);
  frame.raw(payload->bytes());
  return frame.take_shared();
}

void ReliableEndpoint::send_control_frame(NodeId source) {
  Writer frame;
  {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    PeerRecvState& peer = recv_state_[source];
    peer.last_acked = peer.contiguous;
    std::vector<std::uint64_t> missing;
    if (!peer.above.empty()) {
      // Capped: bounds the control frame and the scan even if the gap is
      // enormous; later scans pick up where this one stopped once the low
      // seqs are recovered and contiguous advances.
      const SeqNo highest = *peer.above.rbegin();
      for (SeqNo seq = peer.contiguous + 1;
           seq < highest && missing.size() < options_.max_nack_entries;
           ++seq) {
        if (peer.above.count(seq) == 0) {
          missing.push_back(seq);
        }
      }
    }
    frame.u8(static_cast<std::uint8_t>(FrameType::kControl));
    frame.u64(peer.contiguous);
    frame.u64_vec(missing);
    stats_.control_frames += 1;
  }
  transport_.send(id_, source, frame.take_shared());
}

void ReliableEndpoint::on_frame(NodeId from, const WireFrame& frame) {
  if (!options_.enabled) {
    handler_(from, frame);
    return;
  }
  // The reliable header comes off an untrusted wire: truncation, an
  // unknown type, or an absurd sequence number is counted and dropped, so
  // that one corrupt datagram cannot take down the receive path. Only the
  // header parse is guarded — an upper layer's parse errors are its own.
  FrameType type{};
  SeqNo seq = 0;
  std::vector<std::uint64_t> missing;
  try {
    Reader reader(frame.bytes());
    type = static_cast<FrameType>(reader.u8());
    if (type == FrameType::kData) {
      seq = reader.u64();
    } else if (type == FrameType::kControl) {
      seq = reader.u64();  // cumulative ack
      missing = reader.u64_vec();
    } else {
      throw SerdeError("ReliableEndpoint: unknown frame type");
    }
  } catch (const SerdeError&) {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    stats_.malformed_frames += 1;
    return;
  }
  if (type == FrameType::kData) {
    bool duplicate = false;
    {
      const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                          "reliable link state");
      PeerRecvState& peer = recv_state_[from];
      if (seq > peer.contiguous + options_.max_forward_window) {
        stats_.malformed_frames += 1;
        return;
      }
      duplicate = seq <= peer.contiguous || peer.above.count(seq) != 0;
      if (duplicate) {
        stats_.duplicates_suppressed += 1;
      } else {
        peer.above.insert(seq);
        while (peer.above.count(peer.contiguous + 1) != 0) {
          peer.above.erase(peer.contiguous + 1);
          peer.contiguous += 1;
        }
        stats_.data_delivered += 1;
        maybe_arm_receiver_timer();
      }
    }
    if (duplicate) {
      if (obs::tracing(options_.obs)) {
        options_.obs.tracer->instant(
            "dup_drop", "reliable", obs::Tracer::wall_now_us(),
            "\"from\":" + std::to_string(from) +
                ",\"seq\":" + std::to_string(seq));
      }
      // An immediate ack lets the retransmitting sender prune and stop.
      send_control_frame(from);
      return;
    }
    handler_(from, frame.subframe(kDataHeaderBytes));
    return;
  }
  const SeqNo cumulative = seq;
  std::vector<SharedBuffer> to_resend;
  {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    PeerSendState& peer = send_state_[from];
    peer.unacked.erase(peer.unacked.begin(),
                       peer.unacked.upper_bound(cumulative));
    for (const SeqNo missing_seq : missing) {
      const auto it = peer.unacked.find(missing_seq);
      if (it != peer.unacked.end()) {
        to_resend.push_back(it->second);
      }
    }
    stats_.retransmissions += to_resend.size();
  }
  if (!to_resend.empty() && obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "retransmit", "reliable", obs::Tracer::wall_now_us(),
        "\"to\":" + std::to_string(from) +
            ",\"count\":" + std::to_string(to_resend.size()) +
            ",\"cause\":\"nack\"");
  }
  for (SharedBuffer& data_frame : to_resend) {
    transport_.send(id_, from, std::move(data_frame));
  }
}

void ReliableEndpoint::on_sender_timer() {
  // Retransmit unacked data; covers dropped tail messages that gap-driven
  // NACKs can never discover. The burst cap (lowest seqs first — the ones
  // the receiver needs to advance its prefix) keeps a slow or dead peer
  // from turning each tick into a storm; the timer re-arms while anything
  // stays unacked, so the rest follows on later ticks.
  std::vector<std::pair<NodeId, SharedBuffer>> to_resend;
  {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    sender_timer_armed_ = false;
    for (const auto& [peer_id, peer] : send_state_) {
      for (const auto& [seq, data_frame] : peer.unacked) {
        if (to_resend.size() >= options_.max_retransmit_burst) {
          break;
        }
        to_resend.emplace_back(peer_id, data_frame);
      }
      if (to_resend.size() >= options_.max_retransmit_burst) {
        break;
      }
    }
    stats_.retransmissions += to_resend.size();
    maybe_arm_sender_timer();
  }
  if (!to_resend.empty() && obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "retransmit", "reliable", obs::Tracer::wall_now_us(),
        "\"count\":" + std::to_string(to_resend.size()) +
            ",\"cause\":\"timer\"");
  }
  for (auto& [peer_id, data_frame] : to_resend) {
    transport_.send(id_, peer_id, std::move(data_frame));
  }
}

void ReliableEndpoint::on_receiver_timer() {
  std::vector<NodeId> gapped_sources;
  {
    const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                        "reliable link state");
    receiver_timer_armed_ = false;
    for (const auto& [source, peer] : recv_state_) {
      if (peer.has_gap() || peer.ack_pending()) {
        gapped_sources.push_back(source);
      }
    }
  }
  for (const NodeId source : gapped_sources) {
    send_control_frame(source);
  }
  // Re-check after sending: new gaps may persist (missing data still in
  // flight), in which case the timer re-arms for another scan.
  const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                      "reliable link state");
  maybe_arm_receiver_timer();
}

void ReliableEndpoint::maybe_arm_sender_timer() {
  if (sender_timer_armed_) {
    return;
  }
  const bool has_unacked = std::any_of(
      send_state_.begin(), send_state_.end(),
      [](const auto& entry) { return !entry.second.unacked.empty(); });
  if (!has_unacked) {
    return;
  }
  sender_timer_armed_ = true;
  transport_.schedule(options_.retransmit_interval_us,
                      [this] { on_sender_timer(); });
}

void ReliableEndpoint::maybe_arm_receiver_timer() {
  if (receiver_timer_armed_) {
    return;
  }
  const bool needs_scan = std::any_of(
      recv_state_.begin(), recv_state_.end(), [](const auto& entry) {
        return entry.second.has_gap() || entry.second.ack_pending();
      });
  if (!needs_scan) {
    return;
  }
  receiver_timer_armed_ = true;
  transport_.schedule(options_.control_interval_us,
                      [this] { on_receiver_timer(); });
}

ReliableStats ReliableEndpoint::stats() const {
  const check::OrderedLockGuard guard(mutex_, check::kRankReliable,
                                      "reliable link state");
  return stats_;
}

}  // namespace cbc
