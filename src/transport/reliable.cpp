#include "transport/reliable.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

ReliableEndpoint::ReliableEndpoint(Transport& transport, Handler handler,
                                   Options options)
    : transport_(transport), handler_(std::move(handler)),
      options_(std::move(options)) {
  require(static_cast<bool>(handler_), "ReliableEndpoint: empty handler");
  require(options_.control_interval_us > 0,
          "ReliableEndpoint: control interval must be positive");
  if (options_.retransmit_interval_us == 0) {
    options_.retransmit_interval_us = 5 * options_.control_interval_us;
  }
  require(options_.retransmit_interval_us > 0,
          "ReliableEndpoint: retransmit interval must be positive");
  if (options_.max_retransmit_interval_us == 0) {
    options_.max_retransmit_interval_us = 16 * options_.retransmit_interval_us;
  }
  require(options_.max_retransmit_interval_us >=
              options_.retransmit_interval_us,
          "ReliableEndpoint: max_retransmit_interval_us below the base "
          "retransmit interval");
  if (options_.suspect_after_us > 0 && options_.heartbeat_interval_us == 0) {
    options_.heartbeat_interval_us = options_.suspect_after_us / 4;
  }
  require(options_.suspect_after_us == 0 ||
              options_.heartbeat_interval_us < options_.suspect_after_us,
          "ReliableEndpoint: heartbeat interval must beat the suspect "
          "timeout");
  require(options_.max_nack_entries > 0,
          "ReliableEndpoint: max_nack_entries must be positive");
  require(options_.max_retransmit_burst > 0,
          "ReliableEndpoint: max_retransmit_burst must be positive");
  require(options_.max_forward_window > 0,
          "ReliableEndpoint: max_forward_window must be positive");
  backoff_rng_ = Rng(options_.backoff_seed);
  id_ = transport_.add_endpoint([this](NodeId from, const WireFrame& frame) {
    on_frame(from, frame);
  });
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "reliable";
  }
  if (options_.obs.has_metrics()) {
    // Scrape-time migration of ReliableStats onto the registry: the
    // legacy struct stays the storage (stats() accessors keep working);
    // the collector reads it under the endpoint lock when scraped.
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const ReliableStats s = stats();
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".data_sent", s.data_sent);
          sink.counter(prefix + ".data_delivered", s.data_delivered);
          sink.counter(prefix + ".duplicates_suppressed",
                       s.duplicates_suppressed);
          sink.counter(prefix + ".retransmissions", s.retransmissions);
          sink.counter(prefix + ".control_frames", s.control_frames);
          sink.counter(prefix + ".malformed_frames", s.malformed_frames);
          sink.counter(prefix + ".heartbeats_sent", s.heartbeats_sent);
          sink.counter(prefix + ".heartbeats_received", s.heartbeats_received);
          sink.counter(prefix + ".suspect_events", s.suspect_events);
          sink.counter(prefix + ".alive_events", s.alive_events);
          sink.counter(prefix + ".window_resyncs", s.window_resyncs);
          sink.counter(prefix + ".peer_unresponsive_events",
                       s.peer_unresponsive_events);
          sink.counter(prefix + ".oob_frames", s.oob_frames);
          sink.counter(prefix + ".retained_capped", s.retained_capped);
          sink.counter("clock.samples", s.clock_samples);
        });
  }
}

void ReliableEndpoint::send(NodeId to, SharedBuffer payload) {
  require(payload != nullptr, "ReliableEndpoint::send: null payload");
  if (!options_.enabled) {
    transport_.send(id_, to, std::move(payload));
    return;
  }
  SharedBuffer frame;
  {
    const LockGuard guard(mutex_);
    PeerSendState& peer = send_state_[to];
    if (peer.next_seq < send_seq_floor_) {
      peer.next_seq = send_seq_floor_;  // link created after a recovery
    }
    const SeqNo seq = peer.next_seq++;
    frame = make_data_frame(seq, payload);
    peer.unacked.emplace(seq, frame);
    if (peer.next_retransmit_us == 0) {
      peer.next_retransmit_us =
          transport_.now_us() + options_.retransmit_interval_us;
    }
    stats_.data_sent += 1;
    note_sent(to, transport_.now_us());
    maybe_arm_sender_timer();
    // With lockstep link seqs (the i-th broadcast rides seq i), this is
    // the wire-departure stamp of message {self, seq} toward `to`.
    obs::flight_record(obs::FlightEvent::kWireTx, MessageId{id_, seq}, to);
  }
  transport_.send(id_, to, std::move(frame));
}

void ReliableEndpoint::send_oob(NodeId to,
                                std::span<const std::uint8_t> payload) {
  Writer frame;
  frame.u8(static_cast<std::uint8_t>(FrameType::kOob));
  frame.raw(payload);
  {
    const LockGuard guard(mutex_);
    note_sent(to, transport_.now_us());
  }
  transport_.send(id_, to, frame.take_shared());
}

SharedBuffer ReliableEndpoint::make_data_frame(
    SeqNo seq, const SharedBuffer& payload) const {
  // The one copy on the reliable path: prefixing the header forces a fresh
  // allocation. The result is shared by the first send and all retransmits.
  Writer frame;
  frame.u8(static_cast<std::uint8_t>(FrameType::kData));
  frame.u64(seq);
  frame.raw(payload->bytes());
  return frame.take_shared();
}

void ReliableEndpoint::send_control_frame(NodeId source) {
  Writer frame;
  {
    const LockGuard guard(mutex_);
    PeerRecvState& peer = recv_state_[source];
    peer.last_acked = peer.contiguous;
    std::vector<std::uint64_t> missing;
    if (!peer.above.empty()) {
      // Capped: bounds the control frame and the scan even if the gap is
      // enormous; later scans pick up where this one stopped once the low
      // seqs are recovered and contiguous advances.
      const SeqNo highest = *peer.above.rbegin();
      for (SeqNo seq = peer.contiguous + 1;
           seq < highest && missing.size() < options_.max_nack_entries;
           ++seq) {
        if (peer.above.count(seq) == 0) {
          missing.push_back(seq);
        }
      }
    }
    frame.u8(static_cast<std::uint8_t>(FrameType::kControl));
    frame.u64(std::min(peer.contiguous, peer.ack_ceiling));
    frame.u64_vec(missing);
    stats_.control_frames += 1;
    note_sent(source, transport_.now_us());
  }
  transport_.send(id_, source, frame.take_shared());
}

void ReliableEndpoint::on_frame(NodeId from, const WireFrame& frame) {
  if (!options_.enabled) {
    handler_(from, frame);
    return;
  }
  // Any frame at all — even one that fails to parse — proves the peer's
  // process is up: liveness is piggybacked on the whole receive path.
  bool came_alive = false;
  {
    const LockGuard guard(mutex_);
    came_alive = note_heard(from, transport_.now_us());
  }
  if (came_alive && options_.on_liveness) {
    options_.on_liveness(from, true);
  }
  // The reliable header comes off an untrusted wire: truncation, an
  // unknown type, or an absurd sequence number is counted and dropped, so
  // that one corrupt datagram cannot take down the receive path. Only the
  // header parse is guarded — an upper layer's parse errors are its own.
  FrameType type{};
  SeqNo seq = 0;
  std::vector<std::uint64_t> missing;
  std::int64_t hb_origin_us = 0;  // heartbeat timestamps (0 = legacy frame)
  std::int64_t hb_echo_origin_us = 0;
  std::int64_t hb_echo_rx_us = 0;
  try {
    Reader reader(frame.bytes());
    type = static_cast<FrameType>(reader.u8());
    if (type == FrameType::kData) {
      seq = reader.u64();
    } else if (type == FrameType::kControl) {
      seq = reader.u64();  // cumulative ack
      missing = reader.u64_vec();
    } else if (type == FrameType::kWindowBase) {
      seq = reader.u64();  // lowest seq the sender retains
    } else if (type == FrameType::kHeartbeat) {
      // Clock-offset piggyback; all three fields are optional so a bare
      // legacy [u8] heartbeat still parses.
      if (reader.remaining() >= 8) {
        hb_origin_us = reader.i64();
      }
      if (reader.remaining() >= 16) {
        hb_echo_origin_us = reader.i64();
        hb_echo_rx_us = reader.i64();
      }
    } else if (type == FrameType::kOob) {
      // No further header.
    } else {
      throw SerdeError("ReliableEndpoint: unknown frame type");
    }
  } catch (const SerdeError&) {
    const LockGuard guard(mutex_);
    stats_.malformed_frames += 1;
    return;
  }
  if (type == FrameType::kHeartbeat) {
    const std::int64_t wall_now = obs::Tracer::wall_now_us();
    bool offset_changed = false;
    ClockOffset estimate;
    {
      const LockGuard guard(mutex_);
      stats_.heartbeats_received += 1;
      if (hb_origin_us > 0) {
        PeerClock& clock = clocks_[from];
        clock.last_rx_origin_us = hb_origin_us;
        clock.last_rx_wall_us = wall_now;
        if (hb_echo_origin_us > 0) {
          // NTP exchange completed: t1 = our send the peer echoed,
          // t2 = peer's receipt of it, t3 = peer's send of THIS frame,
          // t4 = now.
          offset_changed = update_clock_offset(
              from, hb_echo_origin_us, hb_echo_rx_us, hb_origin_us,
              wall_now);
          estimate = clock.estimate;
        }
      }
    }
    if (offset_changed && obs::tracing(options_.obs)) {
      options_.obs.tracer->instant(
          "clock_offset", "clock", wall_now,
          "\"peer\":" + std::to_string(from) + ",\"offset_us\":" +
              std::to_string(estimate.offset_us) + ",\"rtt_us\":" +
              std::to_string(estimate.rtt_us));
    }
    return;
  }
  if (type == FrameType::kOob) {
    {
      const LockGuard guard(mutex_);
      stats_.oob_frames += 1;
    }
    if (options_.oob_handler) {
      options_.oob_handler(from, frame.subframe(1).bytes());
    }
    return;
  }
  if (type == FrameType::kWindowBase) {
    // The sender told us the lowest sequence it still retains: everything
    // below was acknowledged by this node's previous incarnation, so it is
    // covered by the recovery baseline — skip ahead instead of NACKing
    // history that can never be retransmitted.
    bool resynced = false;
    {
      const LockGuard guard(mutex_);
      PeerRecvState& peer = recv_state_[from];
      if (seq == 0 ||
          seq > peer.contiguous + 1 + options_.max_forward_window) {
        stats_.malformed_frames += 1;
        return;
      }
      if (seq - 1 > peer.contiguous) {
        peer.contiguous = seq - 1;
        peer.above.erase(peer.above.begin(),
                         peer.above.upper_bound(peer.contiguous));
        while (peer.above.count(peer.contiguous + 1) != 0) {
          peer.above.erase(peer.contiguous + 1);
          peer.contiguous += 1;
        }
        stats_.window_resyncs += 1;
        resynced = true;
        maybe_arm_receiver_timer();
      }
    }
    if (resynced) {
      // Ack the new window immediately so the sender stops replying.
      send_control_frame(from);
    }
    return;
  }
  if (type == FrameType::kData) {
    bool duplicate = false;
    {
      const LockGuard guard(mutex_);
      PeerRecvState& peer = recv_state_[from];
      if (seq > peer.contiguous + options_.max_forward_window) {
        stats_.malformed_frames += 1;
        return;
      }
      duplicate = seq <= peer.contiguous || peer.above.count(seq) != 0;
      if (duplicate) {
        stats_.duplicates_suppressed += 1;
      } else {
        peer.above.insert(seq);
        while (peer.above.count(peer.contiguous + 1) != 0) {
          peer.above.erase(peer.contiguous + 1);
          peer.contiguous += 1;
        }
        stats_.data_delivered += 1;
        maybe_arm_receiver_timer();
        // Lockstep link seqs: seq from this peer IS its broadcast seq.
        obs::flight_record(obs::FlightEvent::kWireRx, MessageId{from, seq},
                           from);
      }
    }
    if (duplicate) {
      if (obs::tracing(options_.obs)) {
        options_.obs.tracer->instant(
            "dup_drop", "reliable", obs::Tracer::wall_now_us(),
            "\"from\":" + std::to_string(from) +
                ",\"seq\":" + std::to_string(seq));
      }
      // An immediate ack lets the retransmitting sender prune and stop.
      send_control_frame(from);
      return;
    }
    handler_(from, frame.subframe(kDataHeaderBytes));
    return;
  }
  const SeqNo cumulative = seq;
  std::vector<SharedBuffer> to_resend;
  SeqNo window_base = 0;
  {
    const LockGuard guard(mutex_);
    PeerSendState& peer = send_state_[from];
    peer.unacked.erase(peer.unacked.begin(),
                       peer.unacked.upper_bound(cumulative));
    // A control frame is proof of a responsive peer: reset its backoff.
    peer.backoff_us = 0;
    peer.unresponsive_reported = false;
    if (!peer.unacked.empty()) {
      peer.next_retransmit_us = std::min(
          peer.next_retransmit_us,
          transport_.now_us() + options_.retransmit_interval_us);
      maybe_arm_sender_timer();
    } else {
      peer.next_retransmit_us = 0;
    }
    // A cumulative ack below our retained window means the receiver
    // restarted and is chasing history we pruned long ago (its old
    // incarnation acked it). Tell it where the window really starts.
    const SeqNo lowest =
        peer.unacked.empty() ? peer.next_seq : peer.unacked.begin()->first;
    if (cumulative + 1 < lowest) {
      window_base = lowest;
    }
    for (const SeqNo missing_seq : missing) {
      const auto it = peer.unacked.find(missing_seq);
      if (it != peer.unacked.end()) {
        to_resend.push_back(it->second);
      }
    }
    stats_.retransmissions += to_resend.size();
  }
  if (window_base != 0) {
    Writer reply;
    reply.u8(static_cast<std::uint8_t>(FrameType::kWindowBase));
    reply.u64(window_base);
    transport_.send(id_, from, reply.take_shared());
  }
  if (!to_resend.empty() && obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "retransmit", "reliable", obs::Tracer::wall_now_us(),
        "\"to\":" + std::to_string(from) +
            ",\"count\":" + std::to_string(to_resend.size()) +
            ",\"cause\":\"nack\"");
  }
  for (SharedBuffer& data_frame : to_resend) {
    transport_.send(id_, from, std::move(data_frame));
  }
}

void ReliableEndpoint::on_sender_timer() {
  // Retransmit unacked data; covers dropped tail messages that gap-driven
  // NACKs can never discover. The burst cap (lowest seqs first — the ones
  // the receiver needs to advance its prefix) keeps a slow or dead peer
  // from turning each tick into a storm, and each link that still has
  // unacked data after a pass backs off exponentially (reset by any
  // control frame from that peer), so a dead peer decays to a trickle.
  std::vector<std::pair<NodeId, SharedBuffer>> to_resend;
  std::vector<NodeId> newly_unresponsive;
  {
    const LockGuard guard(mutex_);
    sender_timer_armed_ = false;
    const SimTime now = transport_.now_us();
    for (auto& [peer_id, peer] : send_state_) {
      if (peer.unacked.empty()) {
        peer.next_retransmit_us = 0;
        continue;
      }
      if (now < peer.next_retransmit_us ||
          to_resend.size() >= options_.max_retransmit_burst) {
        continue;
      }
      for (const auto& [seq, data_frame] : peer.unacked) {
        if (to_resend.size() >= options_.max_retransmit_burst) {
          break;
        }
        to_resend.emplace_back(peer_id, data_frame);
      }
      if (schedule_next_retransmit(peer, now)) {
        newly_unresponsive.push_back(peer_id);
      }
    }
    stats_.retransmissions += to_resend.size();
    maybe_arm_sender_timer();
  }
  for (const NodeId peer_id : newly_unresponsive) {
    if (options_.on_peer_unresponsive) {
      options_.on_peer_unresponsive(peer_id);
    }
  }
  if (!to_resend.empty() && obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "retransmit", "reliable", obs::Tracer::wall_now_us(),
        "\"count\":" + std::to_string(to_resend.size()) +
            ",\"cause\":\"timer\"");
  }
  for (auto& [peer_id, data_frame] : to_resend) {
    transport_.send(id_, peer_id, std::move(data_frame));
  }
}

void ReliableEndpoint::on_receiver_timer() {
  std::vector<NodeId> gapped_sources;
  {
    const LockGuard guard(mutex_);
    receiver_timer_armed_ = false;
    for (const auto& [source, peer] : recv_state_) {
      if (peer.has_gap() || peer.ack_pending()) {
        gapped_sources.push_back(source);
      }
    }
  }
  for (const NodeId source : gapped_sources) {
    send_control_frame(source);
  }
  // Re-check after sending: new gaps may persist (missing data still in
  // flight), in which case the timer re-arms for another scan.
  const LockGuard guard(mutex_);
  maybe_arm_receiver_timer();
}

bool ReliableEndpoint::schedule_next_retransmit(PeerSendState& peer,
                                                SimTime now) {
  const SimTime base = options_.retransmit_interval_us;
  const SimTime cap = options_.max_retransmit_interval_us;
  const SimTime interval =
      peer.backoff_us == 0 ? base : std::min(peer.backoff_us * 2, cap);
  peer.backoff_us = interval;
  // Jitter: uniform in [interval/2, interval] so a fleet of senders
  // backing off from the same event decorrelates instead of thundering.
  const SimTime half = interval / 2;
  const SimTime jittered =
      half + static_cast<SimTime>(backoff_rng_.next_below(
                 static_cast<std::uint64_t>(half) + 1));
  peer.next_retransmit_us = now + jittered;
  if (interval >= cap && !peer.unresponsive_reported) {
    peer.unresponsive_reported = true;
    stats_.peer_unresponsive_events += 1;
    return true;
  }
  return false;
}

void ReliableEndpoint::maybe_arm_sender_timer() {
  SimTime earliest = 0;
  for (const auto& [peer_id, peer] : send_state_) {
    if (peer.unacked.empty()) {
      continue;
    }
    if (earliest == 0 || peer.next_retransmit_us < earliest) {
      earliest = peer.next_retransmit_us;
    }
  }
  if (earliest == 0) {
    return;
  }
  if (sender_timer_armed_ && sender_timer_deadline_ <= earliest) {
    return;
  }
  // Either no timer is pending, or the pending one fires too late for the
  // new earliest deadline; schedule (possibly an extra) one. A stale extra
  // firing is harmless: it re-checks eligibility and re-arms.
  sender_timer_armed_ = true;
  sender_timer_deadline_ = earliest;
  const SimTime delay = std::max<SimTime>(1, earliest - transport_.now_us());
  transport_.schedule(delay, [this] { on_sender_timer(); });
}

void ReliableEndpoint::maybe_arm_receiver_timer() {
  if (receiver_timer_armed_) {
    return;
  }
  const bool needs_scan = std::any_of(
      recv_state_.begin(), recv_state_.end(), [](const auto& entry) {
        return entry.second.has_gap() || entry.second.ack_pending();
      });
  if (!needs_scan) {
    return;
  }
  receiver_timer_armed_ = true;
  transport_.schedule(options_.control_interval_us,
                      [this] { on_receiver_timer(); });
}

void ReliableEndpoint::monitor_peers(const std::vector<NodeId>& peers) {
  require(options_.enabled, "ReliableEndpoint: cannot monitor peers on a "
                            "pass-through endpoint");
  require(options_.suspect_after_us > 0,
          "ReliableEndpoint: monitor_peers requires suspect_after_us > 0");
  // Resolve gauges before taking the endpoint lock: gauge() takes the
  // registry lock, which ranks BELOW this endpoint's (kRankRegistry <
  // kRankReliable) — resolving under mutex_ would invert the lock order.
  std::map<NodeId, obs::Gauge*> gauges;
  std::map<NodeId, std::pair<obs::Gauge*, obs::Gauge*>> clock_gauges;
  if (options_.obs.has_metrics()) {
    for (const NodeId peer : peers) {
      if (peer != id_) {
        gauges[peer] = &options_.obs.metrics->gauge(
            options_.obs.prefix + ".peer_alive." + std::to_string(peer));
        clock_gauges[peer] = {
            &options_.obs.metrics->gauge("clock.offset_us." +
                                         std::to_string(peer)),
            &options_.obs.metrics->gauge("clock.rtt_us." +
                                         std::to_string(peer))};
      }
    }
  }
  const LockGuard guard(mutex_);
  const SimTime now = transport_.now_us();
  for (const NodeId peer : peers) {
    if (peer == id_ || liveness_.count(peer) != 0) {
      continue;
    }
    PeerLiveness liveness;
    liveness.last_heard_us = now;
    const auto gauge_it = gauges.find(peer);
    if (gauge_it != gauges.end()) {
      liveness.alive_gauge = gauge_it->second;
      liveness.alive_gauge->set(1.0);
    }
    liveness_.emplace(peer, liveness);
    const auto clock_it = clock_gauges.find(peer);
    if (clock_it != clock_gauges.end()) {
      PeerClock& clock = clocks_[peer];
      clock.offset_gauge = clock_it->second.first;
      clock.rtt_gauge = clock_it->second.second;
    }
  }
  maybe_arm_liveness_timer();
}

bool ReliableEndpoint::update_clock_offset(NodeId from, std::int64_t t1,
                                           std::int64_t t2, std::int64_t t3,
                                           std::int64_t t4) {
  const std::int64_t rtt = (t4 - t1) - (t3 - t2);
  // Reject unusable samples: a negative round trip (stale/forged echo)
  // or one so long the midpoint assumption is meaningless.
  if (t1 <= 0 || t2 <= 0 || rtt < 0 || rtt > 10'000'000) {
    return false;
  }
  const double offset =
      (static_cast<double>(t2 - t1) + static_cast<double>(t3 - t4)) / 2.0;
  PeerClock& clock = clocks_[from];
  ClockOffset& estimate = clock.estimate;
  if (estimate.samples == 0) {
    estimate.offset_us = offset;
    estimate.rtt_us = static_cast<double>(rtt);
  } else {
    // EWMA smoothing: heartbeat cadence is slow, so favour new samples
    // enough to track drift but damp one-off queueing spikes.
    estimate.offset_us += 0.25 * (offset - estimate.offset_us);
    estimate.rtt_us += 0.25 * (static_cast<double>(rtt) - estimate.rtt_us);
  }
  estimate.samples += 1;
  stats_.clock_samples += 1;
  if (clock.offset_gauge != nullptr) {
    clock.offset_gauge->set(static_cast<std::int64_t>(estimate.offset_us));
  }
  if (clock.rtt_gauge != nullptr) {
    clock.rtt_gauge->set(static_cast<std::int64_t>(estimate.rtt_us));
  }
  return true;
}

std::map<NodeId, ClockOffset> ReliableEndpoint::clock_offsets() const {
  const LockGuard guard(mutex_);
  std::map<NodeId, ClockOffset> out;
  for (const auto& [peer, clock] : clocks_) {
    if (clock.estimate.samples > 0) {
      out.emplace(peer, clock.estimate);
    }
  }
  return out;
}

std::vector<NodeId> ReliableEndpoint::suspected_peers() const {
  const LockGuard guard(mutex_);
  std::vector<NodeId> suspected;
  for (const auto& [peer, liveness] : liveness_) {
    if (liveness.suspected) {
      suspected.push_back(peer);
    }
  }
  return suspected;
}

bool ReliableEndpoint::note_heard(NodeId from, SimTime now) {
  const auto it = liveness_.find(from);
  if (it == liveness_.end()) {
    return false;
  }
  it->second.last_heard_us = now;
  if (!it->second.suspected) {
    return false;
  }
  it->second.suspected = false;
  stats_.alive_events += 1;
  if (it->second.alive_gauge != nullptr) {
    it->second.alive_gauge->set(1.0);
  }
  return true;
}

void ReliableEndpoint::note_sent(NodeId to, SimTime now) {
  if (liveness_.empty()) {
    return;
  }
  const auto it = liveness_.find(to);
  if (it != liveness_.end()) {
    it->second.last_sent_us = now;
  }
}

std::size_t ReliableEndpoint::cap_dead_peer_retention(PeerSendState& peer) {
  std::size_t dropped = 0;
  while (peer.unacked.size() > options_.max_retained_per_dead_peer) {
    // Lowest seqs first: the survivor keeps the newest tail, and the
    // window-base handshake tells a revived peer where the window now
    // starts — the dropped prefix is covered by recovery baselines.
    peer.unacked.erase(peer.unacked.begin());
    dropped += 1;
  }
  return dropped;
}

void ReliableEndpoint::maybe_arm_liveness_timer() {
  if (liveness_timer_armed_ || liveness_.empty() ||
      options_.heartbeat_interval_us <= 0) {
    return;
  }
  liveness_timer_armed_ = true;
  transport_.schedule(options_.heartbeat_interval_us,
                      [this] { on_liveness_timer(); });
}

void ReliableEndpoint::on_liveness_timer() {
  std::vector<NodeId> to_heartbeat;
  std::vector<NodeId> newly_suspected;
  {
    const LockGuard guard(mutex_);
    liveness_timer_armed_ = false;
    const SimTime now = transport_.now_us();
    for (auto& [peer, liveness] : liveness_) {
      if (now - liveness.last_sent_us >= options_.heartbeat_interval_us) {
        liveness.last_sent_us = now;
        stats_.heartbeats_sent += 1;
        to_heartbeat.push_back(peer);
      }
      if (!liveness.suspected &&
          now - liveness.last_heard_us > options_.suspect_after_us) {
        liveness.suspected = true;
        stats_.suspect_events += 1;
        if (liveness.alive_gauge != nullptr) {
          liveness.alive_gauge->set(0.0);
        }
        newly_suspected.push_back(peer);
      }
      // A peer suspected past the grace window is treated as dead for
      // retention purposes: cap its unacked backlog so a permanently
      // silent peer cannot pin unbounded sender memory. A revived
      // incarnation recovers via the kWindowBase resync + checkpoint
      // transfer, exactly like a peer chasing pruned history.
      if (options_.max_retained_per_dead_peer > 0 && liveness.suspected &&
          now - liveness.last_heard_us >
              options_.suspect_after_us + options_.dead_peer_grace_us) {
        const auto send_it = send_state_.find(peer);
        if (send_it != send_state_.end()) {
          stats_.retained_capped +=
              cap_dead_peer_retention(send_it->second);
        }
      }
    }
    maybe_arm_liveness_timer();
  }
  if (!to_heartbeat.empty()) {
    // Per-peer frames: each carries this send's wall timestamp plus an
    // echo of that peer's last heartbeat (its origin stamp and our
    // arrival stamp) — the three legs of the NTP offset exchange.
    for (const NodeId peer : to_heartbeat) {
      std::int64_t echo_origin = 0;
      std::int64_t echo_rx = 0;
      {
        const LockGuard guard(mutex_);
        const auto clock_it = clocks_.find(peer);
        if (clock_it != clocks_.end()) {
          echo_origin = clock_it->second.last_rx_origin_us;
          echo_rx = clock_it->second.last_rx_wall_us;
        }
      }
      Writer frame;
      frame.u8(static_cast<std::uint8_t>(FrameType::kHeartbeat));
      frame.i64(obs::Tracer::wall_now_us());
      frame.i64(echo_origin);
      frame.i64(echo_rx);
      transport_.send(id_, peer, frame.take_shared());
    }
  }
  if (options_.on_liveness) {
    for (const NodeId peer : newly_suspected) {
      options_.on_liveness(peer, false);
    }
  }
}

void ReliableEndpoint::fast_forward_send_seq(SeqNo next_seq) {
  const LockGuard guard(mutex_);
  if (next_seq > send_seq_floor_) {
    send_seq_floor_ = next_seq;
  }
  for (auto& [peer_id, peer] : send_state_) {
    if (peer.next_seq < next_seq) {
      peer.next_seq = next_seq;
    }
  }
}

void ReliableEndpoint::set_ack_ceiling(NodeId peer, SeqNo ceiling) {
  require(options_.enabled,
          "ReliableEndpoint: ack ceilings need a sequencing endpoint");
  bool raised = false;
  {
    const LockGuard guard(mutex_);
    PeerRecvState& state = recv_state_[peer];
    raised = ceiling > state.ack_ceiling &&
             state.ack_ceiling < state.contiguous;
    state.ack_ceiling = ceiling;
  }
  if (raised) {
    send_control_frame(peer);
  }
}

std::size_t ReliableEndpoint::unacked_total() const {
  const LockGuard guard(mutex_);
  std::size_t total = 0;
  for (const auto& [peer_id, peer] : send_state_) {
    total += peer.unacked.size();
  }
  return total;
}

ReliableStats ReliableEndpoint::stats() const {
  const LockGuard guard(mutex_);
  return stats_;
}

}  // namespace cbc
