// Transport running endpoints on real threads.
//
// Each endpoint owns a delivery queue drained by its own worker thread, so
// an endpoint's handler runs serially (per-endpoint single-threaded, the
// same discipline protocol code sees under SimTransport) while different
// endpoints run genuinely in parallel. An optional per-message jitter
// randomizes delivery timing, exercising the reordering tolerance of the
// layers above on real concurrency.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "transport/transport.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace cbc {

/// Thread-backed transport. add_endpoint() must finish before the first
/// send(); send()/schedule() are thread-safe afterwards. The destructor
/// stops all workers and joins them.
class ThreadTransport final : public Transport {
 public:
  struct Options {
    SimTime max_jitter_us = 0;  ///< uniform extra delay per message
    std::uint64_t seed = 1;     ///< jitter RNG seed
  };

  ThreadTransport() : ThreadTransport(Options{}) {}
  explicit ThreadTransport(Options options);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  NodeId add_endpoint(Handler handler) override;
  [[nodiscard]] std::size_t endpoint_count() const override;
  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override;
  void schedule(SimTime delay_us, std::function<void()> action) override;
  [[nodiscard]] SimTime now_us() const override;

  /// Blocks until every queue is empty, all handlers have returned, and no
  /// timer is pending. Useful for examples/tests to reach quiescence; only
  /// meaningful when no new external sends race with the call.
  void drain();

 private:
  struct Endpoint;
  struct TimerEntry {
    SimTime due_us;
    std::uint64_t seq;
    std::function<void()> action;
    bool operator<(const TimerEntry& other) const {
      if (due_us != other.due_us) return due_us > other.due_us;  // min-heap
      return seq > other.seq;
    }
  };

  void worker_loop(Endpoint& endpoint);
  void timer_loop();
  void enqueue(NodeId from, NodeId to, SharedBuffer frame);

  struct Endpoint {
    Handler handler;
    Mutex mutex{kRankPeerQueue, "endpoint inbox"};
    CondVar cv;
    std::deque<std::pair<NodeId, SharedBuffer>> queue CBC_GUARDED_BY(mutex);
    // a handler invocation is in flight
    bool busy CBC_GUARDED_BY(mutex) = false;
    std::thread worker;
  };

  Options options_;
  Mutex jitter_mutex_{kRankJitter, "jitter rng"};
  Rng jitter_rng_ CBC_GUARDED_BY(jitter_mutex_);
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex endpoints_mutex_{kRankPeerTable, "endpoint table"};
  std::vector<std::unique_ptr<Endpoint>> endpoints_
      CBC_GUARDED_BY(endpoints_mutex_);

  Mutex timer_mutex_{kRankTimer, "timer queue"};
  CondVar timer_cv_;
  std::priority_queue<TimerEntry> timers_ CBC_GUARDED_BY(timer_mutex_);
  std::uint64_t timer_seq_ CBC_GUARDED_BY(timer_mutex_) = 0;
  std::size_t timers_in_flight_ CBC_GUARDED_BY(timer_mutex_) = 0;
  std::thread timer_thread_;

  std::atomic<bool> stopping_{false};
};

}  // namespace cbc
