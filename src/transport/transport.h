// Transport abstraction under the ordering layers.
//
// A Transport moves immutable, refcounted frames between endpoints and
// provides timers. Four implementations ship with the library:
//   - SimTransport: deterministic, on the discrete-event SimNetwork;
//     used by tests and every bench.
//   - ThreadTransport: real std::thread concurrency with per-endpoint
//     delivery queues; used by examples to show the same protocol stack
//     running outside the simulator.
//   - net::UdpTransport: real nonblocking UDP sockets on a single-threaded
//     event loop (net/udp_transport.h) — members in different processes.
//   - BatchingTransport: a decorator over any of the above that packs
//     several frames per wire message (transport/batching.h).
//
// Frames are SharedBuffers: a broadcast to N destinations shares ONE
// buffer across all sends, and receive handlers get a WireFrame window
// into the same bytes — the transport never copies a payload.
//
// The transport makes NO ordering or reliability promises beyond what its
// construction parameters say: messages may be reordered, dropped, or
// duplicated. ReliableEndpoint (reliable.h) masks loss/duplication;
// ordering is the job of src/causal and src/total.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace cbc {

/// Byte-transport interface.
///
/// Threading contract (common to all implementations):
///  - Receive handlers for ONE endpoint are invoked serially, never
///    concurrently with themselves; protocol state reachable only from a
///    single endpoint's handler needs no locking against the transport.
///  - send(), schedule(), and now_us() are safe to call from any thread
///    once the endpoint they involve exists — including from inside a
///    receive handler or a scheduled action.
///  - schedule()d actions run on the same execution context that delivers
///    messages (the simulator step, a timer thread, or the event loop).
///
/// Endpoint lifecycle: registration is a start-up activity. Every
/// implementation accepts add_endpoint() before its execution context
/// starts delivering; registering later is implementation-defined and
/// must either work or fail loudly:
///  - SimTransport: any time (single-threaded by construction).
///  - ThreadTransport: must complete before the first send(); endpoints
///    added later exist but miss messages sent before registration.
///  - net::UdpTransport: before EventLoop::run(), or on the loop thread
///    itself; a late call from any other thread throws InvalidArgument
///    (never a silent race — see net/udp_transport.h).
///  - BatchingTransport: inherits the inner transport's rule.
class Transport {
 public:
  /// Receive handler: (sender id, frame window). The frame's buffer is
  /// refcounted — handlers may retain it (zero-copy hold-back) beyond the
  /// call.
  using Handler = std::function<void(NodeId from, const WireFrame& frame)>;

  virtual ~Transport() = default;

  /// Registers an endpoint; returns its dense id.
  virtual NodeId add_endpoint(Handler handler) = 0;

  /// Number of registered endpoints.
  [[nodiscard]] virtual std::size_t endpoint_count() const = 0;

  /// Sends a shared frame from `from` to `to` (self-sends allowed). The
  /// same SharedBuffer may be passed to any number of destinations.
  virtual void send(NodeId from, NodeId to, SharedBuffer frame) = 0;

  /// Convenience: wraps loose bytes into a frame (moves, no copy).
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> payload) {
    send(from, to, make_buffer(std::move(payload)));
  }

  /// Schedules `action` to run after `delay_us` microseconds, on the same
  /// execution context that delivers messages for this transport.
  virtual void schedule(SimTime delay_us, std::function<void()> action) = 0;

  /// Current transport time in microseconds (virtual for SimTransport,
  /// monotonic wall clock for ThreadTransport).
  [[nodiscard]] virtual SimTime now_us() const = 0;
};

}  // namespace cbc
