// Transport abstraction under the ordering layers.
//
// A Transport moves opaque byte payloads between endpoints and provides
// timers. Two implementations ship with the library:
//   - SimTransport: deterministic, on the discrete-event SimNetwork;
//     used by tests and every bench.
//   - ThreadTransport: real std::thread concurrency with per-endpoint
//     delivery queues; used by examples to show the same protocol stack
//     running outside the simulator.
//
// The transport makes NO ordering or reliability promises beyond what its
// construction parameters say: messages may be reordered, dropped, or
// duplicated. ReliableEndpoint (reliable.h) masks loss/duplication;
// ordering is the job of src/causal and src/total.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/types.h"

namespace cbc {

/// Byte-transport interface. Implementations define their own threading
/// discipline; see each class's comment.
class Transport {
 public:
  /// Receive handler: (sender id, payload bytes). The payload span is only
  /// valid for the duration of the call.
  using Handler =
      std::function<void(NodeId from, std::span<const std::uint8_t> payload)>;

  virtual ~Transport() = default;

  /// Registers an endpoint; returns its dense id.
  virtual NodeId add_endpoint(Handler handler) = 0;

  /// Number of registered endpoints.
  [[nodiscard]] virtual std::size_t endpoint_count() const = 0;

  /// Sends bytes from `from` to `to` (self-sends allowed).
  virtual void send(NodeId from, NodeId to,
                    std::vector<std::uint8_t> payload) = 0;

  /// Schedules `action` to run after `delay_us` microseconds, on the same
  /// execution context that delivers messages for this transport.
  virtual void schedule(SimTime delay_us, std::function<void()> action) = 0;

  /// Current transport time in microseconds (virtual for SimTransport,
  /// monotonic wall clock for ThreadTransport).
  [[nodiscard]] virtual SimTime now_us() const = 0;
};

}  // namespace cbc
