#include "transport/batching.h"

#include "obs/trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc {

BatchingTransport::BatchingTransport(Transport& inner, Options options)
    : inner_(inner), options_(options) {
  require(options_.max_batch >= 1, "BatchingTransport: max_batch must be >= 1");
  require(options_.flush_interval_us > 0,
          "BatchingTransport: flush interval must be positive");
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "batch";
  }
  if (options_.obs.has_metrics()) {
    // Occupancy buckets are message counts, not latencies; explicit
    // small-integer bounds keep the distribution readable.
    occupancy_hist_ = &options_.obs.metrics->histogram(
        options_.obs.prefix + ".occupancy",
        {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64});
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const BatchStats s = stats();
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".messages_in", s.messages_in);
          sink.counter(prefix + ".batches_out", s.batches_out);
          sink.counter(prefix + ".full_flushes", s.full_flushes);
          sink.counter(prefix + ".tick_flushes", s.tick_flushes);
          sink.counter(prefix + ".decode_errors", s.decode_errors);
        });
  }
}

void BatchingTransport::observe_flush(std::size_t occupancy,
                                      const char* cause) {
  if (occupancy_hist_ != nullptr) {
    occupancy_hist_->record(static_cast<double>(occupancy));
  }
  if (obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "batch_flush", "batch", obs::Tracer::wall_now_us(),
        "\"occupancy\":" + std::to_string(occupancy) + ",\"cause\":\"" +
            cause + "\"");
  }
}

NodeId BatchingTransport::add_endpoint(Handler handler) {
  require(static_cast<bool>(handler), "BatchingTransport: empty handler");
  return inner_.add_endpoint(
      [this, handler = std::move(handler)](NodeId from, const WireFrame& batch) {
        unpack(from, batch, handler);
      });
}

std::size_t BatchingTransport::endpoint_count() const {
  return inner_.endpoint_count();
}

void BatchingTransport::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(frame != nullptr, "BatchingTransport::send: null frame");
  SharedBuffer batch;
  {
    const LockGuard guard(mutex_);
    std::vector<SharedBuffer>& queue = pending_[{from, to}];
    queue.push_back(std::move(frame));
    stats_.messages_in += 1;
    if (queue.size() >= options_.max_batch) {
      batch = pack(queue);
      queue.clear();
      stats_.batches_out += 1;
      stats_.full_flushes += 1;
    } else {
      maybe_arm_timer();
    }
  }
  if (batch) {
    observe_flush(options_.max_batch, "full");
    inner_.send(from, to, std::move(batch));
  }
}

SharedBuffer BatchingTransport::pack(const std::vector<SharedBuffer>& frames) {
  Writer writer;
  writer.u32(static_cast<std::uint32_t>(frames.size()));
  for (const SharedBuffer& frame : frames) {
    writer.blob(frame->bytes());
  }
  return writer.take_shared();
}

void BatchingTransport::unpack(NodeId from, const WireFrame& batch,
                               const Handler& handler) {
  // Batch framing is untrusted wire input: a truncated or corrupt batch
  // drops the undecodable tail (counted) instead of tearing down the
  // receive path. Only the framing parse is guarded — what a handler
  // throws for an inner message is its own layer's business.
  Reader reader(batch.bytes());
  std::uint32_t count = 0;
  try {
    count = reader.u32();
  } catch (const SerdeError&) {
    const LockGuard guard(mutex_);
    stats_.decode_errors += 1;
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::span<const std::uint8_t> inner;
    try {
      inner = reader.blob_view();
    } catch (const SerdeError&) {
      const LockGuard guard(mutex_);
      stats_.decode_errors += 1;
      return;
    }
    if (inner.empty()) {
      handler(from, WireFrame(batch.buffer, 0, 0));
      continue;
    }
    const auto offset =
        static_cast<std::size_t>(inner.data() - batch.buffer->data());
    handler(from, WireFrame(batch.buffer, offset, inner.size()));
  }
}

void BatchingTransport::flush() {
  std::vector<std::pair<LinkKey, SharedBuffer>> batches;
  std::vector<std::size_t> occupancies;
  {
    const LockGuard guard(mutex_);
    for (auto& [link, queue] : pending_) {
      if (queue.empty()) {
        continue;
      }
      occupancies.push_back(queue.size());
      batches.emplace_back(link, pack(queue));
      queue.clear();
      stats_.batches_out += 1;
      stats_.tick_flushes += 1;
    }
  }
  for (std::size_t i = 0; i < batches.size(); ++i) {
    observe_flush(occupancies[i], "tick");
    inner_.send(batches[i].first.first, batches[i].first.second,
                std::move(batches[i].second));
  }
}

void BatchingTransport::maybe_arm_timer() {
  if (timer_armed_) {
    return;
  }
  timer_armed_ = true;
  inner_.schedule(options_.flush_interval_us, [this] { on_tick(); });
}

void BatchingTransport::on_tick() {
  {
    const LockGuard guard(mutex_);
    timer_armed_ = false;
  }
  flush();
  // Re-arm only if new frames queued between flush() draining and now —
  // keeps a quiescent system free of pending events.
  const LockGuard guard(mutex_);
  for (const auto& [link, queue] : pending_) {
    if (!queue.empty()) {
      maybe_arm_timer();
      break;
    }
  }
}

void BatchingTransport::schedule(SimTime delay_us, std::function<void()> action) {
  inner_.schedule(delay_us, std::move(action));
}

SimTime BatchingTransport::now_us() const { return inner_.now_us(); }

BatchingTransport::BatchStats BatchingTransport::stats() const {
  const LockGuard guard(mutex_);
  return stats_;
}

}  // namespace cbc
