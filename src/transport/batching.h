// Send-side batching at the stack boundary.
//
// BatchingTransport is a decorator over any Transport: outgoing frames are
// queued per (sender, destination) link and packed several-per-wire-message,
// flushed when a link's queue reaches `max_batch` or when the flush timer
// ticks. Receivers unpack the batch and hand each inner message upward as a
// WireFrame window into the batch buffer — one allocation per batch on the
// send side, zero copies on the receive side.
//
// Batch wire layout (little-endian, via util/serde):
//
//     u32  count
//     count * ( u32 length, length bytes )   -- each an inner frame
//
// Works over SimTransport (deterministic: the flush timer is a scheduler
// event) and ThreadTransport (the queue is mutex-guarded; the timer runs on
// the transport's timer thread). Everything registered on one
// BatchingTransport speaks the batch framing — don't mix endpoints of the
// inner transport with endpoints of the decorator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/transport.h"
#include "util/buffer.h"
#include "util/thread_annotations.h"

namespace cbc {

/// Batching decorator. Borrows the inner transport, which must outlive it.
class BatchingTransport final : public Transport {
 public:
  struct Options {
    std::size_t max_batch = 8;        ///< flush a link at this queue depth
    SimTime flush_interval_us = 100;  ///< tick flush for partial batches
    /// Observability sinks (BatchStats collector, a batch-occupancy
    /// histogram, and per-flush trace instants). Default: off.
    obs::Hooks obs{};
  };

  struct BatchStats {
    std::uint64_t messages_in = 0;     ///< frames submitted via send()
    std::uint64_t batches_out = 0;     ///< wire messages sent downward
    std::uint64_t full_flushes = 0;    ///< batches flushed at max_batch
    std::uint64_t tick_flushes = 0;    ///< partial batches flushed by timer
    std::uint64_t decode_errors = 0;   ///< corrupt batch framing dropped
                                       ///< (untrusted wire input — the
                                       ///< decoded prefix is still handed up)
  };

  explicit BatchingTransport(Transport& inner)
      : BatchingTransport(inner, Options{}) {}
  BatchingTransport(Transport& inner, Options options);

  NodeId add_endpoint(Handler handler) override;
  [[nodiscard]] std::size_t endpoint_count() const override;
  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override;
  void schedule(SimTime delay_us, std::function<void()> action) override;
  [[nodiscard]] SimTime now_us() const override;

  /// Flushes every pending partial batch immediately.
  void flush();

  [[nodiscard]] BatchStats stats() const;

 private:
  using LinkKey = std::pair<NodeId, NodeId>;  // (from, to)

  /// Packs `frames` into one batch buffer (the per-batch allocation).
  [[nodiscard]] static SharedBuffer pack(const std::vector<SharedBuffer>& frames);
  void unpack(NodeId from, const WireFrame& batch, const Handler& handler);
  /// Arms at most one timer while queues are non-empty.
  void maybe_arm_timer() CBC_REQUIRES(mutex_);
  void on_tick();

  Transport& inner_;
  Options options_;

  /// Records one flushed batch in the metrics/trace sinks (no lock held).
  void observe_flush(std::size_t occupancy, const char* cause);

  mutable Mutex mutex_{kRankTransport, "batching queue"};
  std::map<LinkKey, std::vector<SharedBuffer>> pending_
      CBC_GUARDED_BY(mutex_);
  bool timer_armed_ CBC_GUARDED_BY(mutex_) = false;
  BatchStats stats_ CBC_GUARDED_BY(mutex_);
  obs::LatencyHistogram* occupancy_hist_ = nullptr;
  // Last member: unregisters before the stats it reads are torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc
