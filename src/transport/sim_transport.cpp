#include "transport/sim_transport.h"

namespace cbc {

SimTime SimTransport::now_us() const {
  // scheduler() is non-const on SimNetwork; the clock read itself is pure.
  return const_cast<sim::SimNetwork&>(network_).scheduler().now();
}

}  // namespace cbc
