#include "transport/thread_transport.h"

#include "util/ensure.h"

namespace cbc {

ThreadTransport::ThreadTransport(Options options)
    : options_(options),
      jitter_rng_(options.seed),
      epoch_(std::chrono::steady_clock::now()) {
  require(options.max_jitter_us >= 0, "ThreadTransport: negative jitter");
  timer_thread_ = std::thread([this] { timer_loop(); });
}

ThreadTransport::~ThreadTransport() {
  stopping_.store(true);
  {
    const LockGuard guard(timer_mutex_);
    timer_cv_.notify_all();
  }
  if (timer_thread_.joinable()) {
    timer_thread_.join();
  }
  const LockGuard guard(endpoints_mutex_);
  for (auto& endpoint : endpoints_) {
    {
      const LockGuard ep_guard(endpoint->mutex);
      endpoint->cv.notify_all();
    }
    if (endpoint->worker.joinable()) {
      endpoint->worker.join();
    }
  }
}

NodeId ThreadTransport::add_endpoint(Handler handler) {
  require(static_cast<bool>(handler), "ThreadTransport: empty handler");
  const LockGuard guard(endpoints_mutex_);
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->handler = std::move(handler);
  Endpoint* raw = endpoint.get();
  endpoint->worker = std::thread([this, raw] { worker_loop(*raw); });
  endpoints_.push_back(std::move(endpoint));
  return static_cast<NodeId>(endpoints_.size() - 1);
}

std::size_t ThreadTransport::endpoint_count() const {
  const LockGuard guard(endpoints_mutex_);
  return endpoints_.size();
}

void ThreadTransport::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(frame != nullptr, "ThreadTransport::send: null frame");
  SimTime jitter = 0;
  if (options_.max_jitter_us > 0) {
    const LockGuard guard(jitter_mutex_);
    jitter = static_cast<SimTime>(jitter_rng_.next_below(
        static_cast<std::uint64_t>(options_.max_jitter_us) + 1));
  }
  if (jitter == 0) {
    enqueue(from, to, std::move(frame));
    return;
  }
  schedule(jitter, [this, from, to, frame = std::move(frame)]() mutable {
    enqueue(from, to, std::move(frame));
  });
}

void ThreadTransport::enqueue(NodeId from, NodeId to, SharedBuffer frame) {
  Endpoint* endpoint = nullptr;
  {
    const LockGuard guard(endpoints_mutex_);
    require(from < endpoints_.size(), "ThreadTransport::send: unknown sender");
    require(to < endpoints_.size(), "ThreadTransport::send: unknown receiver");
    endpoint = endpoints_[to].get();
  }
  {
    const LockGuard guard(endpoint->mutex);
    endpoint->queue.emplace_back(from, std::move(frame));
  }
  endpoint->cv.notify_one();
}

void ThreadTransport::schedule(SimTime delay_us, std::function<void()> action) {
  require(delay_us >= 0, "ThreadTransport::schedule: negative delay");
  require(static_cast<bool>(action), "ThreadTransport::schedule: empty action");
  const LockGuard guard(timer_mutex_);
  timers_.push(TimerEntry{now_us() + delay_us, timer_seq_++, std::move(action)});
  ++timers_in_flight_;
  timer_cv_.notify_all();
}

SimTime ThreadTransport::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
}

void ThreadTransport::worker_loop(Endpoint& endpoint) {
  for (;;) {
    std::pair<NodeId, SharedBuffer> item;
    {
      const LockGuard lock(endpoint.mutex);
      endpoint.cv.wait(endpoint.mutex, [&]() CBC_REQUIRES(endpoint.mutex) {
        return stopping_.load() || !endpoint.queue.empty();
      });
      if (endpoint.queue.empty()) {
        return;  // stopping and drained
      }
      item = std::move(endpoint.queue.front());
      endpoint.queue.pop_front();
      endpoint.busy = true;
    }
    endpoint.handler(item.first, WireFrame(std::move(item.second)));
    {
      const LockGuard guard(endpoint.mutex);
      endpoint.busy = false;
      endpoint.cv.notify_all();  // wake drain() waiters
    }
  }
}

// Hand-over-hand locking across loop iterations (the lock drops only
// around action()) — a shape scoped guards cannot express, so the static
// analysis is waived here; the runtime rank checks still apply.
void ThreadTransport::timer_loop() CBC_NO_THREAD_SAFETY_ANALYSIS {
  timer_mutex_.lock();
  for (;;) {
    if (stopping_.load()) {
      timer_mutex_.unlock();
      return;
    }
    if (timers_.empty()) {
      timer_cv_.wait(timer_mutex_);
      continue;
    }
    const SimTime due = timers_.top().due_us;
    const SimTime current = now_us();
    if (current < due) {
      timer_cv_.wait_for(timer_mutex_, std::chrono::microseconds(due - current));
      continue;
    }
    // Move the action out before unlocking so a concurrent schedule()
    // cannot reorder the heap under us.
    auto action = std::move(const_cast<TimerEntry&>(timers_.top()).action);
    timers_.pop();
    timer_mutex_.unlock();
    action();
    timer_mutex_.lock();
    --timers_in_flight_;
    timer_cv_.notify_all();
  }
}

void ThreadTransport::drain() {
  // Quiescence: no pending timers and every endpoint queue empty and idle.
  for (;;) {
    {
      const LockGuard lock(timer_mutex_);
      timer_cv_.wait(timer_mutex_, [&]() CBC_REQUIRES(timer_mutex_) {
        return stopping_.load() || timers_in_flight_ == 0;
      });
      if (stopping_.load()) {
        return;
      }
    }
    bool all_idle = true;
    {
      const LockGuard guard(endpoints_mutex_);
      for (auto& endpoint : endpoints_) {
        const LockGuard lock(endpoint->mutex);
        endpoint->cv.wait(endpoint->mutex, [&]() CBC_REQUIRES(endpoint->mutex) {
          return stopping_.load() ||
                 (endpoint->queue.empty() && !endpoint->busy);
        });
      }
    }
    // A handler may have armed a new timer while we checked queues; loop
    // until both checks pass back-to-back.
    const LockGuard guard(timer_mutex_);
    if (timers_in_flight_ == 0 && all_idle) {
      return;
    }
  }
}

}  // namespace cbc
