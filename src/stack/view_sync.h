// ViewSyncMember — the interface a flushable ordering member exposes to
// the view-change machinery.
//
// The flush protocol (causal/flush.h) needs more than plain broadcast: it
// suspends application sends, reads the member's contiguous delivered
// prefix, and finally installs the successor view at the agreed cut. Any
// discipline that implements these hooks can sit under a FlushCoordinator;
// OSendMember is the library's implementation.
#pragma once

#include <vector>

#include "causal/delivery.h"
#include "time/vector_clock.h"

namespace cbc {

class GroupView;

/// A BroadcastMember that supports the view-change flush protocol.
class ViewSyncMember : public BroadcastMember {
 public:
  /// Contiguous delivered prefix per sender (rank-indexed by view).
  [[nodiscard]] virtual const VectorClock& delivered_prefix() const = 0;

  /// Installs a successor view. The caller (normally the flush protocol)
  /// must have established that all old-view traffic is delivered here.
  virtual void install_view(const GroupView& new_view) = 0;

  /// Adopts a delivered-prefix baseline (new-view-rank indexed): messages
  /// at or below it are deemed delivered ("before my time"). Used by a
  /// joiner adopting a survivor's welcome cut.
  virtual void adopt_baseline(const VectorClock& baseline) = 0;

  /// Blocks application broadcasts while a view change is flushing;
  /// system traffic still flows.
  virtual void suspend_sends() = 0;
  virtual void resume_sends() = 0;
  [[nodiscard]] virtual bool sends_suspended() const = 0;

  /// Peers this member's failure detector currently suspects (empty when
  /// the member has no detector — the default for simulated stacks).
  [[nodiscard]] virtual std::vector<NodeId> suspected_peers() const {
    return {};
  }
};

}  // namespace cbc
