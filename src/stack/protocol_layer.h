// ProtocolLayer — composable interposition on a broadcast stack.
//
// A ProtocolLayer owns the member below it, splices itself into the
// delivery path (set_deliver on the lower member), and is itself a
// BroadcastMember — so layers stack: the flush coordinator over OSend,
// an application protocol over the flush coordinator, and so on. The
// default implementation is transparent; subclasses override
// on_lower_delivery() to consume/rewrite/delay upward traffic and
// broadcast() to interpose on the downward path.
//
//        app / upper layer
//            |  deliver_up()        ^ Delivery
//        ProtocolLayer subclass     |
//            |  lower().broadcast   ^ on_lower_delivery()
//        lower BroadcastMember
//            |                      ^
//         Transport
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "causal/delivery.h"
#include "util/ensure.h"

namespace cbc {

/// A BroadcastMember decorator over an owned lower member.
class ProtocolLayer : public BroadcastMember {
 public:
  /// Takes ownership of `lower` and splices into its delivery path. The
  /// lower member's previous deliver callback is discarded — construct
  /// stacks bottom-up and register the app callback on the TOP layer.
  explicit ProtocolLayer(std::unique_ptr<BroadcastMember> lower)
      : lower_(std::move(lower)) {
    require(lower_ != nullptr, "ProtocolLayer: null lower member");
    lower_->set_deliver(
        [this](const Delivery& delivery) { on_lower_delivery(delivery); });
  }

  [[nodiscard]] NodeId id() const override { return lower_->id(); }

  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override {
    return lower_->broadcast(std::move(label), std::move(payload), deps);
  }

  [[nodiscard]] const std::vector<Delivery>& log() const override {
    return lower_->log();
  }
  [[nodiscard]] const OrderingStats& stats() const override {
    return lower_->stats();
  }
  [[nodiscard]] const GroupView& view() const override {
    return lower_->view();
  }
  [[nodiscard]] RecursiveMutex& stack_mutex() const override {
    return lower_->stack_mutex();
  }

  void set_deliver(DeliverFn deliver) override {
    upper_ = std::move(deliver);
  }

  /// The member this layer sits on (for layer-specific accessors).
  [[nodiscard]] BroadcastMember& lower() { return *lower_; }
  [[nodiscard]] const BroadcastMember& lower() const { return *lower_; }

 protected:
  /// Upward path hook; the transparent default forwards everything.
  virtual void on_lower_delivery(const Delivery& delivery) {
    deliver_up(delivery);
  }

  /// Hands a delivery to whoever is stacked above (no-op when nothing is).
  void deliver_up(const Delivery& delivery) {
    if (upper_) {
      upper_(delivery);
    }
  }

 private:
  std::unique_ptr<BroadcastMember> lower_;
  DeliverFn upper_;
};

}  // namespace cbc
