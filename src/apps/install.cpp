#include "apps/install.h"

#include <functional>
#include <memory>
#include <string>

#include "apps/card_game.h"
#include "apps/counter.h"
#include "apps/document.h"
#include "apps/fifo_queue.h"
#include "apps/kv_store.h"
#include "apps/registry.h"
#include "apps/replicated_set.h"
#include "object/adapter.h"
#include "object/catalog.h"

namespace cbc::apps {

namespace {

template <typename T>
object::CatalogEntry entry_for(
    std::string name, object::SequentialSpec (*seq_spec)(),
    std::function<object::Op(cbc::NodeId, std::uint64_t, std::uint64_t)>
        workload_op,
    object::Op sync_op) {
  object::CatalogEntry entry;
  entry.name = name;
  entry.make = [name] { return std::make_unique<object::Adapter<T>>(name); };
  entry.spec = seq_spec;
  entry.workload_op = std::move(workload_op);
  entry.sync_op = std::move(sync_op);
  return entry;
}

}  // namespace

void install_objects() {
  object::Catalog& catalog = object::Catalog::instance();

  catalog.install(entry_for<Counter>(
      "counter", &Counter::seq_spec,
      [](cbc::NodeId, std::uint64_t, std::uint64_t k) {
        return k % 2 == 0 ? Counter::inc(1) : Counter::dec(1);
      },
      Counter::rd()));

  // The registry's C-class is its queries (§5.2); updates close
  // activities, so the round sync is a deterministic upd. Mutating sync
  // => no checkpointing for this object (cbc_node enforces).
  catalog.install(entry_for<Registry>(
      "registry", &Registry::seq_spec,
      [](cbc::NodeId node, std::uint64_t, std::uint64_t k) {
        return Registry::qry("name" + std::to_string((node + k) % 4));
      },
      Registry::upd("round", "closed")));

  catalog.install(entry_for<Document>(
      "document", &Document::seq_spec,
      [](cbc::NodeId node, std::uint64_t round, std::uint64_t k) {
        return Document::annotate(
            "sec" + std::to_string(k % 3),
            "n" + std::to_string(node) + "-r" + std::to_string(round) + "-k" +
                std::to_string(k));
      },
      Document::snap()));

  // Distinct (turn, player) per play: the turn encodes (round, slot) and
  // the player is the submitting member — the game's one-play-per-key
  // rule, upheld by construction.
  catalog.install(entry_for<CardGame>(
      "card_game", &CardGame::seq_spec,
      [](cbc::NodeId node, std::uint64_t round, std::uint64_t k) {
        return CardGame::card(round * 1024 + k + 1,
                              static_cast<std::uint32_t>(node),
                              static_cast<std::int64_t>(node * 100 + k));
      },
      CardGame::peek(1, 0)));

  catalog.install(entry_for<ReplicatedSet>(
      "set", &ReplicatedSet::seq_spec,
      [](cbc::NodeId node, std::uint64_t round, std::uint64_t k) {
        return ReplicatedSet::add("elem" +
                                  std::to_string((node * 7 + round + k) % 13));
      },
      ReplicatedSet::snap()));

  // Session-unique keys by construction: each member writes its own key
  // namespace ("s<node>_k<slot>"), one write per slot per round — the kv
  // store's single-writer-per-key domain claim, upheld here. The
  // state-inert fence closes rounds and keeps checkpointing available.
  catalog.install(entry_for<KvStore>(
      "kv", &KvStore::seq_spec,
      [](cbc::NodeId node, std::uint64_t round, std::uint64_t k) {
        return KvStore::put(
            "s" + std::to_string(node) + "_k" + std::to_string(k),
            "r" + std::to_string(round) + "v" + std::to_string(node + k));
      },
      KvStore::fence()));

  // Producer-unique tags by construction: node/round/slot packed into
  // disjoint bit ranges — the queue's domain guarantee, upheld here.
  catalog.install(entry_for<FifoQueue>(
      "queue", &FifoQueue::seq_spec,
      [](cbc::NodeId node, std::uint64_t round, std::uint64_t k) {
        const std::uint64_t tag = (static_cast<std::uint64_t>(node) << 40) |
                                  (round << 20) | (k + 1);
        return FifoQueue::enq(tag,
                              static_cast<std::int64_t>(node * 1000 + k));
      },
      FifoQueue::len()));
}

}  // namespace cbc::apps
