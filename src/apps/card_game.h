// Multiplayer card game — the paper's relaxed-turn-order example (§5.1).
//
// r players take turns in a pre-sequence, but player l's action does not
// depend on the immediately preceding player — only on some earlier player
// k. The paper relaxes the ordering to
//     card_k → card_l   and   ||{card_l, card_i}  for i = k+1 .. l-1,
// letting intermediate players' cards arrive in any order. Plays are kept
// as a set keyed by (turn, player), so concurrent plays commute; a
// round_end marker is the sync operation closing each round's activity.
//
// spec() derives the table from seq_spec(). The probe set IS the game's
// domain claim: every probed play uses a distinct (turn, player) key,
// because the rules guarantee one play per key — that is why card lands
// in the C-class. round_end responds with the plays it scored and peek
// observes one play, so both conflict with card and stay sync.
//
// TurnPlan captures "which player each player actually depends on" and is
// what examples/benches use to generate the Occurs_After edges.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine recording card plays per (turn, player).
class CardGame {
 public:
  /// Applies one operation; round_end responds with the plays count it
  /// scored, peek with the observed card. Unknown kinds throw
  /// InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  /// Card played by `player` at `turn`, or -1 when not played.
  [[nodiscard]] std::int64_t card_at(std::uint64_t turn,
                                     std::uint32_t player) const;

  [[nodiscard]] std::size_t plays() const { return plays_.size(); }
  [[nodiscard]] std::uint64_t rounds_ended() const { return rounds_ended_; }

  bool operator==(const CardGame& other) const {
    return plays_ == other.plays_ && rounds_ended_ == other.rounds_ended_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static CardGame decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived table: card/nop commutative; round_end/peek sync.
  [[nodiscard]] static CommutativitySpec spec();

  using Op = object::Op;
  static Op card(std::uint64_t turn, std::uint32_t player, std::int64_t value);
  static Op round_end(std::uint64_t turn);
  /// State-inert read of one play (the cluster's round-closing sync op).
  static Op peek(std::uint64_t turn, std::uint32_t player);
  /// Commutative inert marker (see Counter::nop).
  static Op nop(std::uint64_t tag = 0);

 private:
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::int64_t> plays_;
  std::uint64_t rounds_ended_ = 0;
};

/// The pre-sequence dependency plan of §5.1: for each player l (0-based
/// position in the turn order), dependency(l) names the earlier position k
/// whose card player l actually waits for. dependency(0) is the previous
/// round's end. The plan is what generates relaxed Occurs_After edges; a
/// strict round-robin plan (dependency(l) = l-1) reproduces the
/// conservative total turn order the paper improves on.
class TurnPlan {
 public:
  /// Strict plan: every player waits for the immediately preceding one.
  static TurnPlan strict(std::uint32_t players);

  /// Relaxed plan with explicit per-position dependencies. deps[l] must be
  /// < l (deps[0] is ignored; position 0 depends on the round start).
  static TurnPlan relaxed(std::vector<std::uint32_t> deps);

  [[nodiscard]] std::uint32_t players() const {
    return static_cast<std::uint32_t>(deps_.size());
  }

  /// Position whose card position `l` depends on (l > 0).
  [[nodiscard]] std::uint32_t dependency(std::uint32_t l) const;

  /// Longest dependency chain length in one round — the round's critical
  /// path, which bounds achievable concurrency (bench C6 reports it).
  [[nodiscard]] std::uint32_t critical_path() const;

 private:
  explicit TurnPlan(std::vector<std::uint32_t> deps) : deps_(std::move(deps)) {}
  std::vector<std::uint32_t> deps_;
};

}  // namespace cbc::apps
