#include "apps/document.h"

#include <sstream>

#include "util/ensure.h"

namespace cbc::apps {

namespace {
const std::set<std::string> kNoAnnotations;
}  // namespace

void Document::apply(std::string_view kind, Reader& args) {
  if (kind == "annotate") {
    std::string section = args.str();
    std::string remark = args.str();
    annotations_[std::move(section)].insert(std::move(remark));
    return;
  }
  if (kind == "rewrite") {
    std::string section = args.str();
    std::string text = args.str();
    bodies_[std::move(section)] = std::move(text);
    return;
  }
  if (kind == "publish") {
    ++publishes_;
    return;
  }
  require(false, "Document::apply: unknown operation kind");
}

const std::set<std::string>& Document::annotations(
    const std::string& section) const {
  const auto it = annotations_.find(section);
  return it == annotations_.end() ? kNoAnnotations : it->second;
}

std::string Document::body(const std::string& section) const {
  const auto it = bodies_.find(section);
  return it == bodies_.end() ? std::string{} : it->second;
}

std::string Document::to_string() const {
  std::ostringstream out;
  out << "Document{sections=" << bodies_.size() << ", publishes=" << publishes_
      << ", annotations=";
  std::size_t count = 0;
  for (const auto& [section, remarks] : annotations_) {
    count += remarks.size();
  }
  out << count << "}";
  return out.str();
}

void Document::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(annotations_.size()));
  for (const auto& [section, remarks] : annotations_) {
    writer.str(section);
    writer.u32(static_cast<std::uint32_t>(remarks.size()));
    for (const std::string& remark : remarks) {
      writer.str(remark);
    }
  }
  writer.u32(static_cast<std::uint32_t>(bodies_.size()));
  for (const auto& [section, body] : bodies_) {
    writer.str(section);
    writer.str(body);
  }
  writer.u64(publishes_);
}

Document Document::decode(Reader& reader) {
  Document document;
  const std::uint32_t sections = reader.u32();
  for (std::uint32_t i = 0; i < sections; ++i) {
    std::string section = reader.str();
    auto& remarks = document.annotations_[std::move(section)];
    const std::uint32_t count = reader.u32();
    for (std::uint32_t k = 0; k < count; ++k) {
      remarks.insert(reader.str());
    }
  }
  const std::uint32_t bodies = reader.u32();
  for (std::uint32_t i = 0; i < bodies; ++i) {
    std::string section = reader.str();
    document.bodies_[std::move(section)] = reader.str();
  }
  document.publishes_ = reader.u64();
  return document;
}

CommutativitySpec Document::spec() {
  CommutativitySpec spec;
  spec.mark_commutative("annotate");
  return spec;
}

Document::Op Document::annotate(const std::string& section,
                                const std::string& remark) {
  Writer writer;
  writer.str(section);
  writer.str(remark);
  return Op{"annotate", writer.take()};
}

Document::Op Document::rewrite(const std::string& section,
                               const std::string& text) {
  Writer writer;
  writer.str(section);
  writer.str(text);
  return Op{"rewrite", writer.take()};
}

Document::Op Document::publish() { return Op{"publish", {}}; }

}  // namespace cbc::apps
