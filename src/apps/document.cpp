#include "apps/document.h"

#include <memory>
#include <sstream>

#include "object/adapter.h"
#include "object/replicated_object.h"
#include "util/ensure.h"

namespace cbc::apps {

namespace {
const std::set<std::string> kNoAnnotations;
}  // namespace

std::vector<std::uint8_t> Document::apply(std::string_view kind,
                                          Reader& args) {
  if (kind == "annotate") {
    std::string section = args.str();
    std::string remark = args.str();
    annotations_[std::move(section)].insert(std::move(remark));
    return {};
  }
  if (kind == "rewrite") {
    std::string section = args.str();
    std::string text = args.str();
    bodies_[std::move(section)] = std::move(text);
    return {};
  }
  if (kind == "publish") {
    ++publishes_;
    Writer response;  // the digest this checkpoint certified
    response.u64(digest());
    return response.take();
  }
  if (kind == "snap") {
    Writer response;
    response.u64(digest());
    return response.take();
  }
  if (kind == "nop") {
    return {};
  }
  require(false, "Document::apply: unknown operation kind");
  return {};
}

std::uint64_t Document::digest() const {
  Writer writer;
  encode(writer);
  return object::fnv1a64(writer.bytes());
}

const std::set<std::string>& Document::annotations(
    const std::string& section) const {
  const auto it = annotations_.find(section);
  return it == annotations_.end() ? kNoAnnotations : it->second;
}

std::string Document::body(const std::string& section) const {
  const auto it = bodies_.find(section);
  return it == bodies_.end() ? std::string{} : it->second;
}

std::string Document::to_string() const {
  std::ostringstream out;
  out << "Document{sections=" << bodies_.size() << ", publishes=" << publishes_
      << ", annotations=";
  std::size_t count = 0;
  for (const auto& [section, remarks] : annotations_) {
    count += remarks.size();
  }
  out << count << "}";
  return out.str();
}

void Document::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(annotations_.size()));
  for (const auto& [section, remarks] : annotations_) {
    writer.str(section);
    writer.u32(static_cast<std::uint32_t>(remarks.size()));
    for (const std::string& remark : remarks) {
      writer.str(remark);
    }
  }
  writer.u32(static_cast<std::uint32_t>(bodies_.size()));
  for (const auto& [section, body] : bodies_) {
    writer.str(section);
    writer.str(body);
  }
  writer.u64(publishes_);
}

Document Document::decode(Reader& reader) {
  Document document;
  const std::uint32_t sections = reader.u32();
  for (std::uint32_t i = 0; i < sections; ++i) {
    std::string section = reader.str();
    auto& remarks = document.annotations_[std::move(section)];
    const std::uint32_t count = reader.u32();
    for (std::uint32_t k = 0; k < count; ++k) {
      remarks.insert(reader.str());
    }
  }
  const std::uint32_t bodies = reader.u32();
  for (std::uint32_t i = 0; i < bodies; ++i) {
    std::string section = reader.str();
    document.bodies_[std::move(section)] = reader.str();
  }
  document.publishes_ = reader.u64();
  return document;
}

object::SequentialSpec Document::seq_spec() {
  object::SequentialSpec spec(
      [] { return std::make_unique<object::Adapter<Document>>("document"); });
  spec.probe(annotate("s1", "r1"));
  spec.probe(annotate("s1", "r2"));
  spec.probe(annotate("s2", "r3"));
  spec.probe(rewrite("s1", "text1"));
  spec.probe(rewrite("s1", "text2"));
  spec.probe(publish());
  spec.probe(snap());
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({annotate("s1", "base"), rewrite("s2", "body")});
  return spec;
}

CommutativitySpec Document::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

Document::Op Document::annotate(const std::string& section,
                                const std::string& remark) {
  Writer writer;
  writer.str(section);
  writer.str(remark);
  return Op{"annotate", writer.take()};
}

Document::Op Document::rewrite(const std::string& section,
                               const std::string& text) {
  Writer writer;
  writer.str(section);
  writer.str(text);
  return Op{"rewrite", writer.take()};
}

Document::Op Document::publish() { return Op{"publish", {}}; }

Document::Op Document::snap() { return Op{"snap", {}}; }

Document::Op Document::nop(std::uint64_t tag) { return object::nop(tag); }

}  // namespace cbc::apps
