// Replicated grow-mostly set — first object written directly against the
// object layer (no pre-object history).
//
// add(e) inserts an element; set semantics make concurrent adds commute
// (even of the same element — insertion is idempotent). rem(e) conflicts
// with add(e), so removals are sync ops; has/snap are reads. The derived
// C-class is {add, nop}: the cluster workload streams adds and closes
// rounds with the state-inert snap digest read.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a string set under add/rem/has/snap.
class ReplicatedSet {
 public:
  /// Applies one operation; has responds with membership, snap with the
  /// element count plus the sorted elements. Unknown kinds throw
  /// InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  [[nodiscard]] bool contains(const std::string& element) const {
    return elements_.count(element) != 0;
  }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  bool operator==(const ReplicatedSet& other) const {
    return elements_ == other.elements_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static ReplicatedSet decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived table: add/nop commutative; rem/has/snap sync.
  [[nodiscard]] static CommutativitySpec spec();

  using Op = object::Op;
  static Op add(const std::string& element);
  static Op rem(const std::string& element);
  static Op has(const std::string& element);
  /// State-inert full read (the cluster's round-closing sync op).
  static Op snap();
  /// Commutative inert marker (see Counter::nop).
  static Op nop(std::uint64_t tag = 0);

 private:
  std::set<std::string> elements_;
};

}  // namespace cbc::apps
