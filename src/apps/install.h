// Installs every app object into the object::Catalog.
//
// Explicit installation (not static initializers, which the linker may
// drop from static libraries): call once at startup — or again freely,
// installation is idempotent. After it returns, the catalog resolves
// counter, registry, document, card_game, set, and queue by name, each
// with its sequential spec and deterministic round-workload hooks.
#pragma once

namespace cbc::apps {

void install_objects();

}  // namespace cbc::apps
