// Replicated tagged FIFO queue — second object written directly against
// the object layer.
//
// enq(tag, value) inserts under a producer-unique tag; deq pops the
// lowest tag. The uniqueness of tags is the queue's domain guarantee
// (producers draw from disjoint ranges — the cluster workload packs
// node/round/op into the tag), and the probe set declares exactly that:
// every probed enqueue uses a distinct tag, which is why enq lands in the
// derived C-class. deq observes and removes the head, len observes the
// size — both conflict with enq and stay sync; len is state-inert and
// closes cluster rounds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a tag-ordered queue under enq/deq/len.
class FifoQueue {
 public:
  /// Applies one operation; deq responds with (found, tag, value), len
  /// with the current size. Unknown kinds throw InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  [[nodiscard]] std::size_t size() const { return elements_.size(); }
  [[nodiscard]] std::uint64_t dequeued() const { return dequeued_; }

  bool operator==(const FifoQueue& other) const {
    return elements_ == other.elements_ && dequeued_ == other.dequeued_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static FifoQueue decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived table: enq/nop commutative; deq/len sync.
  [[nodiscard]] static CommutativitySpec spec();

  using Op = object::Op;
  static Op enq(std::uint64_t tag, std::int64_t value);
  static Op deq();
  /// State-inert size read (the cluster's round-closing sync op).
  static Op len();
  /// Commutative inert marker (see Counter::nop).
  static Op nop(std::uint64_t tag = 0);

 private:
  std::map<std::uint64_t, std::int64_t> elements_;  // tag -> value
  std::uint64_t dequeued_ = 0;
};

}  // namespace cbc::apps
