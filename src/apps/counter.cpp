#include "apps/counter.h"

#include <memory>

#include "object/adapter.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> Counter::apply(std::string_view kind, Reader& args) {
  ++ops_applied_;
  if (kind == "inc") {
    value_ += args.i64();
    return {};
  }
  if (kind == "dec") {
    value_ -= args.i64();
    return {};
  }
  if (kind == "set") {
    value_ = args.i64();
    return {};
  }
  if (kind == "rd") {
    Writer response;  // reads do not change state; they observe it
    response.i64(value_);
    return response.take();
  }
  if (kind == "nop") {
    return {};  // inert marker; tag payload is deliberately not decoded
  }
  require(false, "Counter::apply: unknown operation kind");
  return {};
}

std::string Counter::to_string() const {
  return "Counter{" + std::to_string(value_) + "}";
}

void Counter::encode(Writer& writer) const {
  writer.i64(value_);
  writer.u64(ops_applied_);
}

Counter Counter::decode(Reader& reader) {
  Counter counter;
  counter.value_ = reader.i64();
  counter.ops_applied_ = reader.u64();
  return counter;
}

object::SequentialSpec Counter::seq_spec() {
  object::SequentialSpec spec(
      [] { return std::make_unique<object::Adapter<Counter>>("counter"); });
  spec.probe(inc(2));
  spec.probe(inc(5));
  spec.probe(dec(3));
  spec.probe(set(7));
  spec.probe(set(9));
  spec.probe(rd());
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({set(5)});
  spec.base({inc(3)});
  return spec;
}

CommutativitySpec Counter::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

Counter::Op Counter::inc(std::int64_t by) {
  Writer writer;
  writer.i64(by);
  return Op{"inc", writer.take()};
}

Counter::Op Counter::dec(std::int64_t by) {
  Writer writer;
  writer.i64(by);
  return Op{"dec", writer.take()};
}

Counter::Op Counter::set(std::int64_t to) {
  Writer writer;
  writer.i64(to);
  return Op{"set", writer.take()};
}

Counter::Op Counter::rd() { return Op{"rd", {}}; }

Counter::Op Counter::nop(std::uint64_t tag) { return object::nop(tag); }

}  // namespace cbc::apps
