#include "apps/counter.h"

#include "util/ensure.h"

namespace cbc::apps {

void Counter::apply(std::string_view kind, Reader& args) {
  ++ops_applied_;
  if (kind == "inc") {
    value_ += args.i64();
    return;
  }
  if (kind == "dec") {
    value_ -= args.i64();
    return;
  }
  if (kind == "set") {
    value_ = args.i64();
    return;
  }
  if (kind == "rd") {
    return;  // reads do not change state
  }
  if (kind == "nop") {
    return;  // inert marker; tag payload is deliberately not decoded
  }
  require(false, "Counter::apply: unknown operation kind");
}

std::string Counter::to_string() const {
  return "Counter{" + std::to_string(value_) + "}";
}

void Counter::encode(Writer& writer) const {
  writer.i64(value_);
  writer.u64(ops_applied_);
}

Counter Counter::decode(Reader& reader) {
  Counter counter;
  counter.value_ = reader.i64();
  counter.ops_applied_ = reader.u64();
  return counter;
}

CommutativitySpec Counter::spec() {
  CommutativitySpec spec;
  spec.mark_commutative("inc");
  spec.mark_commutative("dec");
  spec.mark_commutative("nop");
  // Reads commute with reads (they are still sync ops individually, but a
  // transition checker may use the pairwise fact).
  spec.mark_commuting_pair("rd", "rd");
  return spec;
}

Counter::Op Counter::inc(std::int64_t by) {
  Writer writer;
  writer.i64(by);
  return Op{"inc", writer.take()};
}

Counter::Op Counter::dec(std::int64_t by) {
  Writer writer;
  writer.i64(by);
  return Op{"dec", writer.take()};
}

Counter::Op Counter::set(std::int64_t to) {
  Writer writer;
  writer.i64(to);
  return Op{"set", writer.take()};
}

Counter::Op Counter::rd() { return Op{"rd", {}}; }

Counter::Op Counter::nop(std::uint64_t tag) {
  Writer writer;
  writer.u64(tag);
  return Op{"nop", writer.take()};
}

}  // namespace cbc::apps
