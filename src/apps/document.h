// Shared design document — the conferencing example (§1, §5.2, ref [11]).
//
// Conference participants collaboratively annotate sections of a document
// from their workstations. Annotations on any section are commutative
// (each is an independent remark; the set of remarks is what matters), a
// section rewrite is non-commutative, and a checkpoint ("publish") closes
// a causal activity so every participant's window agrees.
//
// spec() derives the table from seq_spec(). publish responds with the
// state digest it certified — that observation is what keeps it a sync op
// (two publishes see different digests depending on order). snap is a
// pure digest read: state-inert but ordered against annotations, which
// makes it the cluster's round-closing sync op.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a sectioned document under annotate/rewrite/publish.
class Document {
 public:
  /// Applies one operation; publish/snap respond with the state digest,
  /// updates respond empty. Unknown kinds throw InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  /// Annotations on a section (set semantics — order-free, so concurrent
  /// annotations commute).
  [[nodiscard]] const std::set<std::string>& annotations(
      const std::string& section) const;

  /// Current body text of a section ("" when never rewritten).
  [[nodiscard]] std::string body(const std::string& section) const;

  /// Number of publish checkpoints applied.
  [[nodiscard]] std::uint64_t publish_count() const { return publishes_; }

  bool operator==(const Document& other) const {
    return annotations_ == other.annotations_ && bodies_ == other.bodies_ &&
           publishes_ == other.publishes_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Document decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived table: annotate/nop commutative; rewrite/publish/snap sync.
  [[nodiscard]] static CommutativitySpec spec();

  using Op = object::Op;
  static Op annotate(const std::string& section, const std::string& remark);
  static Op rewrite(const std::string& section, const std::string& text);
  static Op publish();
  /// State-inert digest read (the cluster's round-closing sync op).
  static Op snap();
  /// Commutative inert marker (see Counter::nop).
  static Op nop(std::uint64_t tag = 0);

 private:
  [[nodiscard]] std::uint64_t digest() const;

  std::map<std::string, std::set<std::string>> annotations_;
  std::map<std::string, std::string> bodies_;
  std::uint64_t publishes_ = 0;
};

}  // namespace cbc::apps
