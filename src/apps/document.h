// Shared design document — the conferencing example (§1, §5.2, ref [11]).
//
// Conference participants collaboratively annotate sections of a document
// from their workstations. Annotations on any section are commutative
// (each is an independent remark; the set of remarks is what matters), a
// section rewrite is non-commutative, and a checkpoint ("publish") closes
// a causal activity so every participant's window agrees.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a sectioned document under annotate/rewrite/publish.
class Document {
 public:
  void apply(std::string_view kind, Reader& args);

  /// Annotations on a section (set semantics — order-free, so concurrent
  /// annotations commute).
  [[nodiscard]] const std::set<std::string>& annotations(
      const std::string& section) const;

  /// Current body text of a section ("" when never rewritten).
  [[nodiscard]] std::string body(const std::string& section) const;

  /// Number of publish checkpoints applied.
  [[nodiscard]] std::uint64_t publish_count() const { return publishes_; }

  bool operator==(const Document& other) const {
    return annotations_ == other.annotations_ && bodies_ == other.bodies_ &&
           publishes_ == other.publishes_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Document decode(Reader& reader);

  /// annotate commutative; rewrite/publish sync ops.
  [[nodiscard]] static CommutativitySpec spec();

  struct Op {
    std::string kind;
    std::vector<std::uint8_t> args;
  };
  static Op annotate(const std::string& section, const std::string& remark);
  static Op rewrite(const std::string& section, const std::string& text);
  static Op publish();

 private:
  std::map<std::string, std::set<std::string>> annotations_;
  std::map<std::string, std::string> bodies_;
  std::uint64_t publishes_ = 0;
};

}  // namespace cbc::apps
