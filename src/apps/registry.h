// Name registry — the paper's name-service example (§5.2).
//
// upd(name, value) registers or overwrites a binding; qry(name) resolves
// one. Queries are commutative with each other; updates are not (two
// updates to the same name conflict, and a query's result depends on which
// updates preceded it). §5.2 uses this service to motivate the
// application-specific consistency protocol in src/appcons: queries carry
// context about the updates they observed so members can detect and
// discard inconsistent results.
//
// spec() derives the table from seq_spec(): the probe set includes two
// updates to the same name (so upd conflicts with itself) and queries
// against updated names (so upd/qry conflict through the query response).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a name->value registry under upd/qry.
class Registry {
 public:
  /// Applies one operation; qry responds with (found, value), updates
  /// respond empty. Unknown kinds throw InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  /// Current binding for `name`, if any.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name) const;

  /// Number of distinct bound names.
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

  /// Count of updates applied per name (used by context checks).
  [[nodiscard]] std::uint64_t update_count(const std::string& name) const;

  bool operator==(const Registry& other) const {
    return bindings_ == other.bindings_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Registry decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived table: qry/nop commutative; upd a sync op.
  [[nodiscard]] static CommutativitySpec spec();

  using Op = object::Op;
  static Op upd(const std::string& name, const std::string& value);
  static Op qry(const std::string& name);
  /// Commutative inert marker (see Counter::nop).
  static Op nop(std::uint64_t tag = 0);

  /// Decodes the name argument of an upd/qry payload (shared with the
  /// appcons protocol, which needs to inspect requests).
  static std::string decode_name(Reader& args);

 private:
  std::map<std::string, std::string> bindings_;
  std::map<std::string, std::uint64_t> update_counts_;
};

}  // namespace cbc::apps
