// Name registry — the paper's name-service example (§5.2).
//
// upd(name, value) registers or overwrites a binding; qry(name) resolves
// one. Queries are commutative with each other; updates are not (two
// updates to the same name conflict, and a query's result depends on which
// updates preceded it). §5.2 uses this service to motivate the
// application-specific consistency protocol in src/appcons: queries carry
// context about the updates they observed so members can detect and
// discard inconsistent results.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a name->value registry under upd/qry.
class Registry {
 public:
  void apply(std::string_view kind, Reader& args);

  /// Current binding for `name`, if any.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& name) const;

  /// Number of distinct bound names.
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

  /// Count of updates applied per name (used by context checks).
  [[nodiscard]] std::uint64_t update_count(const std::string& name) const;

  bool operator==(const Registry& other) const {
    return bindings_ == other.bindings_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Registry decode(Reader& reader);

  /// qry commutative; upd non-commutative (closes activities).
  [[nodiscard]] static CommutativitySpec spec();

  struct Op {
    std::string kind;
    std::vector<std::uint8_t> args;
  };
  static Op upd(const std::string& name, const std::string& value);
  static Op qry(const std::string& name);

  /// Decodes the name argument of an upd/qry payload (shared with the
  /// appcons protocol, which needs to inspect requests).
  static std::string decode_name(Reader& args);

 private:
  std::map<std::string, std::string> bindings_;
  std::map<std::string, std::uint64_t> update_counts_;
};

}  // namespace cbc::apps
