// Replicated integer counter — the paper's running example (§2.2, §5.1).
//
// Operations: inc(k) and dec(k) are commutative with each other ("the
// increment and decrement operations on same integer data are
// commutative"); rd and set are non-commutative and close causal
// activities:   ||{inc, dec}  →  rd     (§5.1's relaxed ordering).
//
// The commutativity table is no longer hand-labelled: spec() derives it
// by probing seq_spec() — inc/dec/nop land in the C-class because no
// probe order changes the state or a response, rd is a sync op because
// its response observes the value, set because two sets conflict.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of one integer register under inc/dec/set/rd.
class Counter {
 public:
  /// Applies one decoded operation and returns its response (rd returns
  /// the observed value; updates return empty). Unknown kinds throw
  /// InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }

  bool operator==(const Counter& other) const {
    return value_ == other.value_;  // op count is bookkeeping, not state
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Counter decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived operation-commutativity table: inc/dec/nop commutative;
  /// set/rd sync ops (probed, not hand-labelled).
  [[nodiscard]] static CommutativitySpec spec();

  // --- Operation builders (label kind, encoded args) ---
  using Op = object::Op;
  static Op inc(std::int64_t by = 1);
  static Op dec(std::int64_t by = 1);
  static Op set(std::int64_t to);
  static Op rd();
  /// Commutative no-op marker. Changes no state; the tag rides in the
  /// payload (and hence in content digests). Cluster workloads use it as
  /// an in-band round/departure marker: being commutative it joins the
  /// open causal cycle, being inert it cannot perturb the counter.
  static Op nop(std::uint64_t tag = 0);

 private:
  std::int64_t value_ = 0;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace cbc::apps
