// Replicated integer counter — the paper's running example (§2.2, §5.1).
//
// Operations: inc(k) and dec(k) are commutative with each other ("the
// increment and decrement operations on same integer data are
// commutative"); rd and set are non-commutative and close causal
// activities:   ||{inc, dec}  →  rd     (§5.1's relaxed ordering).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of one integer register under inc/dec/set/rd.
class Counter {
 public:
  /// Applies one decoded operation. Unknown kinds throw InvalidArgument.
  void apply(std::string_view kind, Reader& args);

  [[nodiscard]] std::int64_t value() const { return value_; }
  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }

  bool operator==(const Counter& other) const {
    return value_ == other.value_;  // op count is bookkeeping, not state
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static Counter decode(Reader& reader);

  /// Operation-commutativity table: inc/dec commutative; set/rd sync ops.
  [[nodiscard]] static CommutativitySpec spec();

  // --- Operation builders (label kind, encoded args) ---
  struct Op {
    std::string kind;
    std::vector<std::uint8_t> args;
  };
  static Op inc(std::int64_t by = 1);
  static Op dec(std::int64_t by = 1);
  static Op set(std::int64_t to);
  static Op rd();
  /// Commutative no-op marker. Changes no state; the tag rides in the
  /// payload (and hence in content digests). Cluster workloads use it as
  /// an in-band round/departure marker: being commutative it joins the
  /// open causal cycle, being inert it cannot perturb the counter.
  static Op nop(std::uint64_t tag = 0);

 private:
  std::int64_t value_ = 0;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace cbc::apps
