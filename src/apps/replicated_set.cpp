#include "apps/replicated_set.h"

#include <memory>
#include <sstream>

#include "object/adapter.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> ReplicatedSet::apply(std::string_view kind,
                                               Reader& args) {
  if (kind == "add") {
    elements_.insert(args.str());
    return {};
  }
  if (kind == "rem") {
    elements_.erase(args.str());
    return {};
  }
  if (kind == "has") {
    Writer response;
    response.boolean(contains(args.str()));
    return response.take();
  }
  if (kind == "snap") {
    Writer response;
    response.u32(static_cast<std::uint32_t>(elements_.size()));
    for (const std::string& element : elements_) {
      response.str(element);
    }
    return response.take();
  }
  if (kind == "nop") {
    return {};
  }
  require(false, "ReplicatedSet::apply: unknown operation kind");
  return {};
}

std::string ReplicatedSet::to_string() const {
  std::ostringstream out;
  out << "Set{";
  bool first = true;
  for (const std::string& element : elements_) {
    if (!first) out << ", ";
    first = false;
    out << element;
  }
  out << "}";
  return out.str();
}

void ReplicatedSet::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(elements_.size()));
  for (const std::string& element : elements_) {
    writer.str(element);
  }
}

ReplicatedSet ReplicatedSet::decode(Reader& reader) {
  ReplicatedSet set;
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    set.elements_.insert(reader.str());
  }
  return set;
}

object::SequentialSpec ReplicatedSet::seq_spec() {
  object::SequentialSpec spec([] {
    return std::make_unique<object::Adapter<ReplicatedSet>>("set");
  });
  spec.probe(add("a"));
  spec.probe(add("a"));  // idempotent re-add still commutes
  spec.probe(add("b"));
  spec.probe(rem("a"));
  spec.probe(rem("c"));
  spec.probe(has("a"));
  spec.probe(has("c"));
  spec.probe(snap());
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({add("c")});
  return spec;
}

CommutativitySpec ReplicatedSet::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

ReplicatedSet::Op ReplicatedSet::add(const std::string& element) {
  Writer writer;
  writer.str(element);
  return Op{"add", writer.take()};
}

ReplicatedSet::Op ReplicatedSet::rem(const std::string& element) {
  Writer writer;
  writer.str(element);
  return Op{"rem", writer.take()};
}

ReplicatedSet::Op ReplicatedSet::has(const std::string& element) {
  Writer writer;
  writer.str(element);
  return Op{"has", writer.take()};
}

ReplicatedSet::Op ReplicatedSet::snap() { return Op{"snap", {}}; }

ReplicatedSet::Op ReplicatedSet::nop(std::uint64_t tag) {
  return object::nop(tag);
}

}  // namespace cbc::apps
