#include "apps/card_game.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "object/adapter.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> CardGame::apply(std::string_view kind,
                                          Reader& args) {
  if (kind == "card") {
    const std::uint64_t turn = args.u64();
    const std::uint32_t player = args.u32();
    const std::int64_t value = args.i64();
    plays_[{turn, player}] = value;
    return {};
  }
  if (kind == "round_end") {
    (void)args.u64();  // turn index, informational
    ++rounds_ended_;
    Writer response;  // the scoreboard this round closure certified
    response.u64(plays_.size());
    return response.take();
  }
  if (kind == "peek") {
    const std::uint64_t turn = args.u64();
    const std::uint32_t player = args.u32();
    Writer response;
    response.i64(card_at(turn, player));
    return response.take();
  }
  if (kind == "nop") {
    return {};
  }
  require(false, "CardGame::apply: unknown operation kind");
  return {};
}

std::int64_t CardGame::card_at(std::uint64_t turn, std::uint32_t player) const {
  const auto it = plays_.find({turn, player});
  return it == plays_.end() ? -1 : it->second;
}

std::string CardGame::to_string() const {
  std::ostringstream out;
  out << "CardGame{plays=" << plays_.size() << ", rounds=" << rounds_ended_
      << "}";
  return out.str();
}

void CardGame::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(plays_.size()));
  for (const auto& [key, value] : plays_) {
    writer.u64(key.first);
    writer.u32(key.second);
    writer.i64(value);
  }
  writer.u64(rounds_ended_);
}

CardGame CardGame::decode(Reader& reader) {
  CardGame game;
  const std::uint32_t plays = reader.u32();
  for (std::uint32_t i = 0; i < plays; ++i) {
    const std::uint64_t turn = reader.u64();
    const std::uint32_t player = reader.u32();
    game.plays_[{turn, player}] = reader.i64();
  }
  game.rounds_ended_ = reader.u64();
  return game;
}

object::SequentialSpec CardGame::seq_spec() {
  object::SequentialSpec spec(
      [] { return std::make_unique<object::Adapter<CardGame>>("card_game"); });
  // Distinct (turn, player) keys throughout — the game's one-play-per-key
  // rule, declared as the probe domain.
  spec.probe(card(1, 0, 7));
  spec.probe(card(1, 1, 9));
  spec.probe(card(2, 0, 11));
  spec.probe(round_end(1));
  spec.probe(round_end(2));
  spec.probe(peek(1, 0));
  spec.probe(peek(2, 1));
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({card(1, 0, 5), round_end(1)});
  return spec;
}

CommutativitySpec CardGame::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

CardGame::Op CardGame::card(std::uint64_t turn, std::uint32_t player,
                            std::int64_t value) {
  Writer writer;
  writer.u64(turn);
  writer.u32(player);
  writer.i64(value);
  return Op{"card", writer.take()};
}

CardGame::Op CardGame::round_end(std::uint64_t turn) {
  Writer writer;
  writer.u64(turn);
  return Op{"round_end", writer.take()};
}

CardGame::Op CardGame::peek(std::uint64_t turn, std::uint32_t player) {
  Writer writer;
  writer.u64(turn);
  writer.u32(player);
  return Op{"peek", writer.take()};
}

CardGame::Op CardGame::nop(std::uint64_t tag) { return object::nop(tag); }

TurnPlan TurnPlan::strict(std::uint32_t players) {
  require(players > 0, "TurnPlan::strict: need at least one player");
  std::vector<std::uint32_t> deps(players, 0);
  for (std::uint32_t l = 1; l < players; ++l) {
    deps[l] = l - 1;
  }
  return TurnPlan(std::move(deps));
}

TurnPlan TurnPlan::relaxed(std::vector<std::uint32_t> deps) {
  require(!deps.empty(), "TurnPlan::relaxed: empty plan");
  for (std::uint32_t l = 1; l < deps.size(); ++l) {
    require(deps[l] < l, "TurnPlan::relaxed: deps[l] must be < l");
  }
  return TurnPlan(std::move(deps));
}

std::uint32_t TurnPlan::dependency(std::uint32_t l) const {
  require(l > 0 && l < deps_.size(),
          "TurnPlan::dependency: position out of range");
  return deps_[l];
}

std::uint32_t TurnPlan::critical_path() const {
  // depth[l] = 1 + depth[dependency(l)]; position 0 has depth 1.
  std::vector<std::uint32_t> depth(deps_.size(), 1);
  std::uint32_t longest = 1;
  for (std::uint32_t l = 1; l < deps_.size(); ++l) {
    depth[l] = depth[deps_[l]] + 1;
    longest = std::max(longest, depth[l]);
  }
  return longest;
}

}  // namespace cbc::apps
