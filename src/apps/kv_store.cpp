#include "apps/kv_store.h"

#include <memory>

#include "object/adapter.h"
#include "object/replicated_object.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> KvStore::apply(std::string_view kind, Reader& args) {
  ++ops_applied_;
  if (kind == "put") {
    const std::string key = args.str();
    entries_[key] = args.str();
    return {};
  }
  if (kind == "get") {
    const std::string key = args.str();
    Writer response;  // reads do not change state; they observe it
    const auto it = entries_.find(key);
    response.boolean(it != entries_.end());
    response.str(it != entries_.end() ? it->second : std::string());
    return response.take();
  }
  if (kind == "fence") {
    const std::uint64_t bucket = args.u64();
    const std::uint64_t buckets = args.u64();
    require(buckets >= 1 && bucket < buckets,
            "KvStore::apply: fence bucket out of range");
    // Digest the sub-map the fence's bucket owns — entries only, no
    // bookkeeping — so a merged multi-shard replay (cbc_check --kv-shards)
    // reproduces each shard's fence responses even though the replay
    // object holds every shard's keys.
    Writer filtered;
    for (const auto& [key, value] : entries_) {
      const auto* data = reinterpret_cast<const std::uint8_t*>(key.data());
      if (object::fnv1a64({data, key.size()}) % buckets != bucket) {
        continue;
      }
      filtered.str(key);
      filtered.str(value);
    }
    const std::vector<std::uint8_t> bytes = filtered.take();
    Writer response;
    response.u64(object::fnv1a64(bytes));
    return response.take();
  }
  if (kind == "nop") {
    return {};  // inert marker; tag payload is deliberately not decoded
  }
  require(false, "KvStore::apply: unknown operation kind");
  return {};
}

std::optional<std::string> KvStore::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string KvStore::to_string() const {
  return "KvStore{" + std::to_string(entries_.size()) + " keys}";
}

void KvStore::encode(Writer& writer) const {
  writer.u64(entries_.size());
  for (const auto& [key, value] : entries_) {
    writer.str(key);
    writer.str(value);
  }
  writer.u64(ops_applied_);
}

KvStore KvStore::decode(Reader& reader) {
  KvStore store;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string key = reader.str();
    store.entries_[key] = reader.str();
  }
  store.ops_applied_ = reader.u64();
  return store;
}

object::SequentialSpec KvStore::seq_spec() {
  object::SequentialSpec spec(
      [] { return std::make_unique<object::Adapter<KvStore>>("kv"); });
  // DISTINCT put keys: the domain claim that no two concurrent puts hit
  // the same key (single writer per key slot within an open cycle).
  spec.probe(put("alpha", "x"));
  spec.probe(put("beta", "y"));
  spec.probe(get("alpha"));
  spec.probe(get("gamma"));
  spec.probe(fence());
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({put("alpha", "base")});
  spec.base({put("gamma", "g"), put("beta", "b")});
  return spec;
}

CommutativitySpec KvStore::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

KvStore::Op KvStore::put(std::string_view key, std::string_view value) {
  Writer writer;
  writer.str(key);
  writer.str(value);
  return Op{"put", writer.take()};
}

KvStore::Op KvStore::get(std::string_view key) {
  Writer writer;
  writer.str(key);
  return Op{"get", writer.take()};
}

KvStore::Op KvStore::fence(std::uint64_t bucket, std::uint64_t buckets) {
  Writer writer;
  writer.u64(bucket);
  writer.u64(buckets);
  return Op{"fence", writer.take()};
}

KvStore::Op KvStore::nop(std::uint64_t tag) { return object::nop(tag); }

}  // namespace cbc::apps
