// Replicated key-value store — the state machine one `cbc_kv` shard
// replicates (§5.2's partitioned shared data).
//
// Operations: put(key, value) overwrites one key and commutes with puts
// to *other* keys; get(key) observes a value and fence() observes the
// whole-state digest, so both are sync operations closing causal
// activities. The derived C-class is {put, nop}.
//
// The probe set is the domain claim (see object/sequential_spec.h): put
// probes use DISTINCT keys because the kv workload guarantees one writer
// per key slot within any open causal cycle — sessions write their own
// key namespace, and cross-round rewrites of a slot are separated by the
// round-closing fence. Concurrent puts to the same key are outside the
// claimed domain, exactly like same-(turn,player) plays in the card game.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "activity/commutativity.h"
#include "object/sequential_spec.h"
#include "util/serde.h"

namespace cbc::apps {

/// State machine of a string->string map under put/get/fence.
class KvStore {
 public:
  /// Applies one decoded operation and returns its response: put and nop
  /// return empty; get returns [bool present][str value]; fence returns
  /// [u64 digest] of the serialized map. Unknown kinds throw
  /// InvalidArgument.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::optional<std::string> lookup(
      const std::string& key) const;
  [[nodiscard]] std::uint64_t ops_applied() const { return ops_applied_; }

  bool operator==(const KvStore& other) const {
    return entries_ == other.entries_;  // op count is bookkeeping, not state
  }

  [[nodiscard]] std::string to_string() const;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  void encode(Writer& writer) const;
  static KvStore decode(Reader& reader);

  /// Behavioural spec: factory, representative ops, probe base states.
  [[nodiscard]] static object::SequentialSpec seq_spec();

  /// Derived operation-commutativity table: put/nop commutative; get and
  /// fence sync ops whose mutual pairs commute (probed, not hand-labelled).
  [[nodiscard]] static CommutativitySpec spec();

  // --- Operation builders (label kind, encoded args) ---
  using Op = object::Op;
  static Op put(std::string_view key, std::string_view value);
  static Op get(std::string_view key);
  /// State-inert sync op: its response is the digest of the sub-map whose
  /// keys hash into `bucket` of `buckets` (default: the whole map), so it
  /// closes causal activities (two fences around a put disagree) while
  /// leaving the map untouched — which is what lets checkpoint capture
  /// ride the round-closing sync delivery. Sharded deployments fence with
  /// (shard, shard_count) so a merged multi-shard replay still reproduces
  /// each shard's responses.
  static Op fence(std::uint64_t bucket = 0, std::uint64_t buckets = 1);
  static Op nop(std::uint64_t tag = 0);

 private:
  std::map<std::string, std::string> entries_;
  std::uint64_t ops_applied_ = 0;
};

}  // namespace cbc::apps
