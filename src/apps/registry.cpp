#include "apps/registry.h"

#include <memory>
#include <sstream>

#include "object/adapter.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> Registry::apply(std::string_view kind,
                                          Reader& args) {
  if (kind == "upd") {
    std::string name = args.str();
    std::string value = args.str();
    update_counts_[name] += 1;
    bindings_[std::move(name)] = std::move(value);
    return {};
  }
  if (kind == "qry") {
    const std::string name = args.str();
    Writer response;
    const auto it = bindings_.find(name);
    response.boolean(it != bindings_.end());
    response.str(it != bindings_.end() ? it->second : std::string{});
    return response.take();
  }
  if (kind == "nop") {
    return {};
  }
  require(false, "Registry::apply: unknown operation kind");
  return {};
}

std::optional<std::string> Registry::lookup(const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::uint64_t Registry::update_count(const std::string& name) const {
  const auto it = update_counts_.find(name);
  return it == update_counts_.end() ? 0 : it->second;
}

std::string Registry::to_string() const {
  std::ostringstream out;
  out << "Registry{";
  bool first = true;
  for (const auto& [name, value] : bindings_) {
    if (!first) out << ", ";
    first = false;
    out << name << "=" << value;
  }
  out << "}";
  return out.str();
}

void Registry::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(bindings_.size()));
  for (const auto& [name, value] : bindings_) {
    writer.str(name);
    writer.str(value);
  }
  writer.u32(static_cast<std::uint32_t>(update_counts_.size()));
  for (const auto& [name, count] : update_counts_) {
    writer.str(name);
    writer.u64(count);
  }
}

Registry Registry::decode(Reader& reader) {
  Registry registry;
  const std::uint32_t bindings = reader.u32();
  for (std::uint32_t i = 0; i < bindings; ++i) {
    std::string name = reader.str();
    registry.bindings_[std::move(name)] = reader.str();
  }
  const std::uint32_t counts = reader.u32();
  for (std::uint32_t i = 0; i < counts; ++i) {
    std::string name = reader.str();
    registry.update_counts_[std::move(name)] = reader.u64();
  }
  return registry;
}

object::SequentialSpec Registry::seq_spec() {
  object::SequentialSpec spec(
      [] { return std::make_unique<object::Adapter<Registry>>("registry"); });
  spec.probe(upd("alpha", "1"));
  spec.probe(upd("alpha", "2"));
  spec.probe(upd("beta", "3"));
  spec.probe(qry("alpha"));
  spec.probe(qry("beta"));
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({upd("alpha", "seed")});
  return spec;
}

CommutativitySpec Registry::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

Registry::Op Registry::upd(const std::string& name, const std::string& value) {
  Writer writer;
  writer.str(name);
  writer.str(value);
  return Op{"upd", writer.take()};
}

Registry::Op Registry::qry(const std::string& name) {
  Writer writer;
  writer.str(name);
  return Op{"qry", writer.take()};
}

Registry::Op Registry::nop(std::uint64_t tag) { return object::nop(tag); }

std::string Registry::decode_name(Reader& args) { return args.str(); }

}  // namespace cbc::apps
