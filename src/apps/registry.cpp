#include "apps/registry.h"

#include <sstream>

#include "util/ensure.h"

namespace cbc::apps {

void Registry::apply(std::string_view kind, Reader& args) {
  if (kind == "upd") {
    std::string name = args.str();
    std::string value = args.str();
    update_counts_[name] += 1;
    bindings_[std::move(name)] = std::move(value);
    return;
  }
  if (kind == "qry") {
    return;  // queries do not change state
  }
  require(false, "Registry::apply: unknown operation kind");
}

std::optional<std::string> Registry::lookup(const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::uint64_t Registry::update_count(const std::string& name) const {
  const auto it = update_counts_.find(name);
  return it == update_counts_.end() ? 0 : it->second;
}

std::string Registry::to_string() const {
  std::ostringstream out;
  out << "Registry{";
  bool first = true;
  for (const auto& [name, value] : bindings_) {
    if (!first) out << ", ";
    first = false;
    out << name << "=" << value;
  }
  out << "}";
  return out.str();
}

void Registry::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(bindings_.size()));
  for (const auto& [name, value] : bindings_) {
    writer.str(name);
    writer.str(value);
  }
  writer.u32(static_cast<std::uint32_t>(update_counts_.size()));
  for (const auto& [name, count] : update_counts_) {
    writer.str(name);
    writer.u64(count);
  }
}

Registry Registry::decode(Reader& reader) {
  Registry registry;
  const std::uint32_t bindings = reader.u32();
  for (std::uint32_t i = 0; i < bindings; ++i) {
    std::string name = reader.str();
    registry.bindings_[std::move(name)] = reader.str();
  }
  const std::uint32_t counts = reader.u32();
  for (std::uint32_t i = 0; i < counts; ++i) {
    std::string name = reader.str();
    registry.update_counts_[std::move(name)] = reader.u64();
  }
  return registry;
}

CommutativitySpec Registry::spec() {
  CommutativitySpec spec;
  spec.mark_commutative("qry");
  return spec;
}

Registry::Op Registry::upd(const std::string& name, const std::string& value) {
  Writer writer;
  writer.str(name);
  writer.str(value);
  return Op{"upd", writer.take()};
}

Registry::Op Registry::qry(const std::string& name) {
  Writer writer;
  writer.str(name);
  return Op{"qry", writer.take()};
}

std::string Registry::decode_name(Reader& args) { return args.str(); }

}  // namespace cbc::apps
