#include "apps/fifo_queue.h"

#include <memory>
#include <sstream>

#include "object/adapter.h"
#include "util/ensure.h"

namespace cbc::apps {

std::vector<std::uint8_t> FifoQueue::apply(std::string_view kind,
                                           Reader& args) {
  if (kind == "enq") {
    const std::uint64_t tag = args.u64();
    const std::int64_t value = args.i64();
    elements_[tag] = value;
    return {};
  }
  if (kind == "deq") {
    Writer response;
    if (elements_.empty()) {
      response.boolean(false);
    } else {
      const auto head = elements_.begin();
      response.boolean(true);
      response.u64(head->first);
      response.i64(head->second);
      elements_.erase(head);
      ++dequeued_;
    }
    return response.take();
  }
  if (kind == "len") {
    Writer response;
    response.u64(elements_.size());
    return response.take();
  }
  if (kind == "nop") {
    return {};
  }
  require(false, "FifoQueue::apply: unknown operation kind");
  return {};
}

std::string FifoQueue::to_string() const {
  std::ostringstream out;
  out << "Queue{size=" << elements_.size() << ", dequeued=" << dequeued_;
  if (!elements_.empty()) {
    out << ", head=" << elements_.begin()->second;
  }
  out << "}";
  return out.str();
}

void FifoQueue::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(elements_.size()));
  for (const auto& [tag, value] : elements_) {
    writer.u64(tag);
    writer.i64(value);
  }
  writer.u64(dequeued_);
}

FifoQueue FifoQueue::decode(Reader& reader) {
  FifoQueue queue;
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t tag = reader.u64();
    queue.elements_[tag] = reader.i64();
  }
  queue.dequeued_ = reader.u64();
  return queue;
}

object::SequentialSpec FifoQueue::seq_spec() {
  object::SequentialSpec spec([] {
    return std::make_unique<object::Adapter<FifoQueue>>("queue");
  });
  // Distinct tags throughout — the producer-unique-tag domain guarantee.
  spec.probe(enq(1, 10));
  spec.probe(enq(2, 20));
  spec.probe(enq(3, 30));
  spec.probe(deq());
  spec.probe(len());
  spec.probe(nop(1));
  spec.probe(nop(2));
  spec.base({enq(5, 50), enq(6, 60)});
  return spec;
}

CommutativitySpec FifoQueue::spec() {
  static const CommutativitySpec derived =
      object::derive_commutativity(seq_spec());
  return derived;
}

FifoQueue::Op FifoQueue::enq(std::uint64_t tag, std::int64_t value) {
  Writer writer;
  writer.u64(tag);
  writer.i64(value);
  return Op{"enq", writer.take()};
}

FifoQueue::Op FifoQueue::deq() { return Op{"deq", {}}; }

FifoQueue::Op FifoQueue::len() { return Op{"len", {}}; }

FifoQueue::Op FifoQueue::nop(std::uint64_t tag) { return object::nop(tag); }

}  // namespace cbc::apps
