// Matrix clock: each member's knowledge of every member's vector clock.
//
// Row i is the most recent vector clock known to have been observed by
// member i. The column-wise minimum gives *stability*: an event with
// timestamp t at sender s is stable (known delivered everywhere) once
// min_i M[i][s] >= t. The stability tracker in src/causal uses this to
// garbage-collect delivered messages and to certify stable points without
// extra message rounds (DESIGN.md decision 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "time/vector_clock.h"
#include "util/types.h"

namespace cbc {

/// N x N matrix of logical-clock knowledge for a group of N members.
class MatrixClock {
 public:
  MatrixClock() = default;

  /// Zero matrix for a group of `width` members.
  explicit MatrixClock(std::size_t width);

  [[nodiscard]] std::size_t width() const { return width_; }

  /// Row for `node`: that node's last known vector clock.
  [[nodiscard]] const VectorClock& row(NodeId node) const;

  /// Replaces `node`'s row with the component-wise max of the current row
  /// and `clock` (knowledge only grows).
  void observe_row(NodeId node, const VectorClock& clock);

  /// Merges full matrices component-wise (gossip of knowledge).
  void merge(const MatrixClock& other);

  /// Smallest value of column `sender` across all rows: every member is
  /// known to have seen at least this many events from `sender`.
  [[nodiscard]] std::uint64_t stable_count(NodeId sender) const;

  /// True when event number `seq` (1-based) from `sender` is known to have
  /// been observed by every member.
  [[nodiscard]] bool is_stable(NodeId sender, std::uint64_t seq) const {
    return stable_count(sender) >= seq;
  }

  /// Component-wise-minimum vector across rows — the globally stable cut.
  [[nodiscard]] VectorClock stable_cut() const;

  bool operator==(const MatrixClock& other) const = default;

  [[nodiscard]] std::string to_string() const;

  void encode(Writer& writer) const;
  static MatrixClock decode(Reader& reader);

 private:
  std::size_t width_ = 0;
  std::vector<VectorClock> rows_;
};

}  // namespace cbc
