// Lamport scalar logical clock (Lamport 1978, the paper's reference [6]).
//
// Used by the total-ordering layer as a deterministic tiebreak source and
// by traces to place events on a single logical axis.
#pragma once

#include <algorithm>
#include <cstdint>

namespace cbc {

/// Scalar logical clock: ticks on local events, advances past remote
/// timestamps on receipt. Value 0 means "no events yet".
class LamportClock {
 public:
  /// Advances for a local event (including a send) and returns the new time.
  std::uint64_t tick() { return ++time_; }

  /// Merges a received timestamp and ticks; returns the new local time.
  std::uint64_t observe(std::uint64_t remote) {
    time_ = std::max(time_, remote);
    return ++time_;
  }

  [[nodiscard]] std::uint64_t time() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

}  // namespace cbc
