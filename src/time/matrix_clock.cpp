#include "time/matrix_clock.h"

#include <algorithm>
#include <sstream>

#include "util/ensure.h"

namespace cbc {

MatrixClock::MatrixClock(std::size_t width) : width_(width) {
  require(width > 0, "MatrixClock: width must be positive");
  rows_.assign(width, VectorClock(width));
}

const VectorClock& MatrixClock::row(NodeId node) const {
  require(node < rows_.size(), "MatrixClock::row: node out of range");
  return rows_[node];
}

void MatrixClock::observe_row(NodeId node, const VectorClock& clock) {
  require(node < rows_.size(), "MatrixClock::observe_row: node out of range");
  require(clock.width() == width_, "MatrixClock::observe_row: width mismatch");
  rows_[node].merge(clock);
}

void MatrixClock::merge(const MatrixClock& other) {
  require(other.width_ == width_, "MatrixClock::merge: width mismatch");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].merge(other.rows_[i]);
  }
}

std::uint64_t MatrixClock::stable_count(NodeId sender) const {
  require(sender < width_, "MatrixClock::stable_count: node out of range");
  std::uint64_t lowest = UINT64_MAX;
  for (const VectorClock& row : rows_) {
    lowest = std::min(lowest, row.at(sender));
  }
  return lowest;
}

VectorClock MatrixClock::stable_cut() const {
  ensure(width_ > 0, "MatrixClock::stable_cut on default-constructed matrix");
  VectorClock cut(width_);
  for (NodeId sender = 0; sender < width_; ++sender) {
    cut.set(sender, stable_count(sender));
  }
  return cut;
}

std::string MatrixClock::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out << " ";
    out << i << ":" << rows_[i].to_string();
  }
  out << "}";
  return out.str();
}

void MatrixClock::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(width_));
  for (const VectorClock& row : rows_) {
    row.encode(writer);
  }
}

MatrixClock MatrixClock::decode(Reader& reader) {
  const std::uint32_t width = reader.u32();
  MatrixClock clock;
  clock.width_ = width;
  clock.rows_.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    VectorClock row = VectorClock::decode(reader);
    if (row.width() != width) {
      throw SerdeError("MatrixClock::decode: row width mismatch");
    }
    clock.rows_.push_back(std::move(row));
  }
  return clock;
}

}  // namespace cbc
