// Vector clocks over a fixed-size group.
//
// VcCausalBroadcast (the ISIS-CBCAST-style baseline in src/causal) stamps
// each broadcast with the sender's vector clock; the delivery condition
// compares clocks component-wise. The comparison also powers the generic
// "happens-before" queries used by tests and the message-graph validator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/serde.h"
#include "util/types.h"

namespace cbc {

/// Outcome of comparing two vector clocks.
enum class ClockOrder {
  kEqual,       ///< identical component-wise
  kBefore,      ///< lhs happens-before rhs (lhs <= rhs, lhs != rhs)
  kAfter,       ///< rhs happens-before lhs
  kConcurrent,  ///< neither dominates
};

/// Fixed-width vector clock. The width is the group size and must match
/// across all clocks that are compared or merged.
class VectorClock {
 public:
  VectorClock() = default;

  /// Zero clock of the given width.
  explicit VectorClock(std::size_t width);

  /// Entry for `node` (must be < width).
  [[nodiscard]] std::uint64_t at(NodeId node) const;

  /// Increments the entry for `node` (a local event at that node).
  void tick(NodeId node);

  /// Component-wise maximum with `other` (receive-side merge).
  void merge(const VectorClock& other);

  /// Sets one entry directly (used when reconstructing from the wire).
  void set(NodeId node, std::uint64_t value);

  [[nodiscard]] std::size_t width() const { return entries_.size(); }

  /// Three-way causal comparison.
  [[nodiscard]] ClockOrder compare(const VectorClock& other) const;

  /// True when *this happens-before `other` (strictly).
  [[nodiscard]] bool happens_before(const VectorClock& other) const {
    return compare(other) == ClockOrder::kBefore;
  }

  /// True when neither clock dominates the other.
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == ClockOrder::kConcurrent;
  }

  bool operator==(const VectorClock& other) const = default;

  /// "[a,b,c]" rendering for traces and test failure messages.
  [[nodiscard]] std::string to_string() const;

  /// Wire encoding (width + entries).
  void encode(Writer& writer) const;
  static VectorClock decode(Reader& reader);

 private:
  std::vector<std::uint64_t> entries_;
};

}  // namespace cbc
