#include "time/vector_clock.h"

#include <sstream>

#include "util/ensure.h"

namespace cbc {

VectorClock::VectorClock(std::size_t width) : entries_(width, 0) {
  require(width > 0, "VectorClock: width must be positive");
}

std::uint64_t VectorClock::at(NodeId node) const {
  require(node < entries_.size(), "VectorClock::at: node out of range");
  return entries_[node];
}

void VectorClock::tick(NodeId node) {
  require(node < entries_.size(), "VectorClock::tick: node out of range");
  ++entries_[node];
}

void VectorClock::merge(const VectorClock& other) {
  require(other.width() == width(), "VectorClock::merge: width mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

void VectorClock::set(NodeId node, std::uint64_t value) {
  require(node < entries_.size(), "VectorClock::set: node out of range");
  entries_[node] = value;
}

ClockOrder VectorClock::compare(const VectorClock& other) const {
  require(other.width() == width(), "VectorClock::compare: width mismatch");
  bool less_somewhere = false;
  bool greater_somewhere = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] < other.entries_[i]) {
      less_somewhere = true;
    } else if (entries_[i] > other.entries_[i]) {
      greater_somewhere = true;
    }
  }
  if (less_somewhere && greater_somewhere) return ClockOrder::kConcurrent;
  if (less_somewhere) return ClockOrder::kBefore;
  if (greater_somewhere) return ClockOrder::kAfter;
  return ClockOrder::kEqual;
}

std::string VectorClock::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << ",";
    out << entries_[i];
  }
  out << "]";
  return out.str();
}

void VectorClock::encode(Writer& writer) const {
  writer.u64_vec(entries_);
}

VectorClock VectorClock::decode(Reader& reader) {
  VectorClock clock;
  clock.entries_ = reader.u64_vec();
  return clock;
}

}  // namespace cbc
