#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/ensure.h"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#define CBC_HAVE_EPOLL 1
#else
#define CBC_HAVE_EPOLL 0
#endif

namespace cbc::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ensure(flags >= 0, "EventLoop: fcntl(F_GETFL) failed");
  ensure(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
         "EventLoop: fcntl(F_SETFL, O_NONBLOCK) failed");
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

EventLoop::EventLoop(Options options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      wheel_(options.wheel) {
#if CBC_HAVE_EPOLL
  if (!options_.force_poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    ensure(epoll_fd_ >= 0, "EventLoop: epoll_create1 failed");
    wake_read_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    ensure(wake_read_ >= 0, "EventLoop: eventfd failed");
    wake_write_ = wake_read_;  // eventfd is bidirectional
    timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    ensure(timer_fd_ >= 0, "EventLoop: timerfd_create failed");
    for (const int fd : {wake_read_, timer_fd_}) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ensure(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
             "EventLoop: epoll_ctl(ADD) failed for internal fd");
    }
    return;
  }
#endif
  int pipe_fds[2] = {-1, -1};
  ensure(::pipe(pipe_fds) == 0, "EventLoop: pipe failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

EventLoop::~EventLoop() {
  ensure(!running(), "EventLoop destroyed while running");
#if CBC_HAVE_EPOLL
  close_if_open(timer_fd_);
  close_if_open(epoll_fd_);
#endif
  if (wake_write_ != wake_read_) {
    close_if_open(wake_write_);
  }
  close_if_open(wake_read_);
  wake_write_ = -1;
}

std::size_t EventLoop::watch_index(int fd) const {
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].fd == fd) {
      return i;
    }
  }
  return watches_.size();
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  require(fd >= 0, "EventLoop::add_fd: invalid fd");
  require(static_cast<bool>(on_readable), "EventLoop::add_fd: empty handler");
  assert_in_loop();
  require(watch_index(fd) == watches_.size(),
          "EventLoop::add_fd: fd already registered");
  set_nonblocking(fd);
#if CBC_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ensure(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
           "EventLoop: epoll_ctl(ADD) failed");
  }
#endif
  watches_.push_back(Watch{fd, std::move(on_readable)});
}

void EventLoop::remove_fd(int fd) {
  assert_in_loop();
  const std::size_t i = watch_index(fd);
  require(i < watches_.size(), "EventLoop::remove_fd: fd not registered");
#if CBC_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  // Null the handler instead of erasing: dispatch may be mid-iteration
  // over watches_ (a handler removing its own or a sibling fd).
  watches_[i].fd = -1;
  watches_[i].on_readable = nullptr;
}

void EventLoop::post(std::function<void()> task) {
  require(static_cast<bool>(task), "EventLoop::post: empty task");
  {
    const LockGuard guard(pending_mutex_);
    pending_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::schedule(SimTime delay_us, std::function<void()> action) {
  require(static_cast<bool>(action), "EventLoop::schedule: empty action");
  if (delay_us < 0) {
    delay_us = 0;
  }
  if (in_loop_thread()) {
    assert_in_loop();
    wheel_.schedule_at(now_us() + delay_us, std::move(action));
    return;
  }
  // Cross-thread: marshal the arm itself onto the loop thread so the wheel
  // stays loop-confined. The deadline is fixed here, not at drain time.
  const SimTime due = now_us() + delay_us;
  post([this, due, action = std::move(action)]() mutable {
    assert_in_loop();
    wheel_.schedule_at(due, std::move(action));
  });
}

SimTime EventLoop::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLoop::wake() {
  if (wake_write_ < 0) {
    return;
  }
  const std::uint64_t one = 1;
  // A full pipe/eventfd already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_write_, &one, wake_write_ == wake_read_ ? sizeof(one) : 1);
}

void EventLoop::drain_wakeup() {
  std::uint8_t scratch[256];
  while (::read(wake_read_, scratch, sizeof(scratch)) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    const LockGuard guard(pending_mutex_);
    tasks.swap(pending_);
  }
  for (auto& task : tasks) {
    task();
  }
}

int EventLoop::poll_timeout_ms() const {
  {
    const LockGuard guard(pending_mutex_);
    if (!pending_.empty()) {
      return 0;
    }
  }
  const std::optional<SimTime> due = wheel_.next_due_hint();
  if (!due.has_value()) {
    return 1000;  // wakeup fd interrupts sooner when anything arrives
  }
  const SimTime wait_us = *due - now_us();
  if (wait_us <= 0) {
    return 0;
  }
  // Round up so the loop never wakes before the deadline and spins.
  return static_cast<int>(std::min<SimTime>((wait_us + 999) / 1000, 1000));
}

void EventLoop::arm_timer_source() {
#if CBC_HAVE_EPOLL
  if (timer_fd_ < 0) {
    return;
  }
  itimerspec spec{};  // zeroed = disarm
  const std::optional<SimTime> due = wheel_.next_due_hint();
  if (due.has_value()) {
    const SimTime wait_us = std::max<SimTime>(*due - now_us(), 1);
    spec.it_value.tv_sec = wait_us / 1'000'000;
    spec.it_value.tv_nsec = (wait_us % 1'000'000) * 1000;
  }
  ensure(::timerfd_settime(timer_fd_, 0, &spec, nullptr) == 0,
         "EventLoop: timerfd_settime failed");
#endif
}

void EventLoop::dispatch_fd(int fd) {
  if (fd == wake_read_) {
    drain_wakeup();
    return;
  }
#if CBC_HAVE_EPOLL
  if (fd == timer_fd_) {
    std::uint64_t expirations = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(timer_fd_, &expirations, sizeof(expirations));
    return;  // the wheel advance at the top of the iteration fires actions
  }
#endif
  const std::size_t i = watch_index(fd);
  if (i < watches_.size() && watches_[i].on_readable) {
    watches_[i].on_readable();
  }
}

void EventLoop::run() {
  ensure(!running(), "EventLoop::run: already running");
  stop_requested_.store(false, std::memory_order_release);
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  assert_in_loop();  // run() IS the loop thread: claim the capability

  while (!stop_requested_.load(std::memory_order_acquire)) {
    run_posted_tasks();
    wheel_.advance(now_us());
    if (stop_requested_.load(std::memory_order_acquire)) {
      break;
    }
    // Compact tombstones left by remove_fd outside any dispatch iteration.
    std::erase_if(watches_, [](const Watch& w) { return w.fd < 0; });

#if CBC_HAVE_EPOLL
    if (epoll_fd_ >= 0) {
      arm_timer_source();
      epoll_event events[64];
      // timerfd wakes us at the next wheel deadline and the eventfd on any
      // post/stop, so the blocking timeout is just a liveness backstop.
      const int n = ::epoll_wait(epoll_fd_, events,
                                 static_cast<int>(std::size(events)), 1000);
      if (n < 0) {
        ensure(errno == EINTR, "EventLoop: epoll_wait failed");
        continue;
      }
      for (int i = 0; i < n; ++i) {
        dispatch_fd(events[i].data.fd);
      }
      continue;
    }
#endif
    std::vector<pollfd> fds;
    fds.reserve(watches_.size() + 1);
    fds.push_back(pollfd{wake_read_, POLLIN, 0});
    for (const Watch& watch : watches_) {
      fds.push_back(pollfd{watch.fd, POLLIN, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (n < 0) {
      ensure(errno == EINTR, "EventLoop: poll failed");
      continue;
    }
    for (const pollfd& pfd : fds) {
      if ((pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        dispatch_fd(pfd.fd);
      }
    }
  }

  running_.store(false, std::memory_order_release);
  loop_thread_ = std::thread::id{};
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

}  // namespace cbc::net
