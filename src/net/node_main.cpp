// cbc_node — one member of a replicated-counter group over real UDP.
//
// Runs the full library stack in one process:
//
//   UdpTransport (kernel datagrams, EventLoop)
//     -> BatchingTransport (N frames per datagram)
//       -> OSendMember or ASendMember (reliability enabled)
//         -> check::InvariantChecker (digest + invariant assertions)
//           -> delivery tap (workload round tracking)
//             -> ReplicaNode<apps::Counter>
//
// The workload is round-structured so that stable-point digests are
// deterministic across members even though UDP reorders freely:
//   - every member submits `ops_per_round` FIFO-chained commutative ops,
//     then a commutative `nop` round marker (FIFO-chained after them);
//   - the leader (node 0) submits the round's closing sync op (`rd`) only
//     after delivering every live member's marker — so the sync message's
//     Occurs_After set covers all of the round's commutative traffic;
//   - members start round r+1 only after delivering sync r.
// Cycle membership is therefore causally forced: any interleaving the
// network produces yields the same digest chain at every member.
//
// Signals:
//   SIGUSR1  graceful departure — broadcast a departing `nop` (which the
//            FIFO chain orders after everything this member sent), stop
//            submitting, keep serving retransmissions until SIGTERM;
//   SIGUSR2  dump a metrics snapshot (to --metrics-snapshot, else stderr);
//   SIGTERM  write the report file (and the trace, with --trace) and exit.
//
// Observability (all off by default; see docs/OBSERVABILITY.md):
//   --metrics-port P      serve Prometheus plaintext on 127.0.0.1:P off the
//                         event loop (0 picks an ephemeral port, written to
//                         the report as metrics_port=...);
//   --metrics-snapshot F  rewrite the metrics page to F every 250ms;
//   --trace F             per-envelope causal tracing, written to F as
//                         Chrome trace-event JSON at SIGTERM.
//
// --observer joins without submitting anything (a restarted member whose
// per-link reliability state died with its previous incarnation: it can
// observe traffic but cannot rejoin the causal past — state transfer is a
// membership-layer concern, out of scope for the wire layer).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/counter.h"
#include "causal/osend.h"
#include "check/invariant_checker.h"
#include "check/violation.h"
#include "group/group_view.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/metrics_http.h"
#include "net/udp_transport.h"
#include "obs/hooks.h"
#include "obs/instrument_layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/replica_node.h"
#include "stack/protocol_layer.h"
#include "total/asend.h"
#include "transport/batching.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace {

volatile std::sig_atomic_t g_depart_requested = 0;
volatile std::sig_atomic_t g_terminate_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_depart_requested = 1; }
void on_sigterm(int) { g_terminate_requested = 1; }
void on_sigusr2(int) { g_dump_requested = 1; }

struct NodeArgs {
  std::string config_path;
  cbc::NodeId id = cbc::kNoNode;
  std::uint64_t rounds = 10;
  std::uint64_t ops_per_round = 20;
  std::string report_path;
  std::string progress_path;
  std::string discipline = "causal";  // or "total"
  bool observer = false;
  bool force_poll = false;
  int metrics_port = -1;  // -1 = no metrics endpoint; 0 = ephemeral
  std::string metrics_snapshot_path;
  std::string trace_path;

  [[nodiscard]] bool observability() const {
    return metrics_port >= 0 || !metrics_snapshot_path.empty() ||
           !trace_path.empty();
  }
};

void usage() {
  std::cerr
      << "usage: cbc_node --config FILE --id N [options]\n"
         "  --config FILE     cluster membership file (id host:port lines)\n"
         "  --id N            this member's id within the config\n"
         "  --rounds R        workload rounds (default 10)\n"
         "  --ops K           commutative ops per member per round "
         "(default 20)\n"
         "  --report FILE     write the final key=value report here\n"
         "  --progress FILE   rewrite round progress here (for harnesses)\n"
         "  --discipline D    causal (OSend, default) or total (ASend)\n"
         "  --observer        join without submitting (restarted member)\n"
         "  --force-poll      use the poll event-loop backend\n"
         "  --metrics-port P  serve Prometheus plaintext on 127.0.0.1:P\n"
         "                    (0 = ephemeral; the report names the port)\n"
         "  --metrics-snapshot FILE  rewrite the metrics page here "
         "periodically\n"
         "  --trace FILE      write Chrome trace-event JSON here at "
         "SIGTERM\n";
}

NodeArgs parse_args(int argc, char** argv) {
  NodeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      cbc::require(i + 1 < argc, "cbc_node: flag needs a value: " + flag);
      return argv[++i];
    };
    if (flag == "--config") {
      args.config_path = value();
    } else if (flag == "--id") {
      args.id = static_cast<cbc::NodeId>(std::stoul(value()));
    } else if (flag == "--rounds") {
      args.rounds = std::stoull(value());
    } else if (flag == "--ops") {
      args.ops_per_round = std::stoull(value());
    } else if (flag == "--report") {
      args.report_path = value();
    } else if (flag == "--progress") {
      args.progress_path = value();
    } else if (flag == "--discipline") {
      args.discipline = value();
    } else if (flag == "--observer") {
      args.observer = true;
    } else if (flag == "--force-poll") {
      args.force_poll = true;
    } else if (flag == "--metrics-port") {
      args.metrics_port = std::stoi(value());
      cbc::require(args.metrics_port >= 0 && args.metrics_port <= 65535,
                   "cbc_node: --metrics-port out of range");
    } else if (flag == "--metrics-snapshot") {
      args.metrics_snapshot_path = value();
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else {
      usage();
      cbc::require(false, "cbc_node: unknown flag: " + flag);
    }
  }
  cbc::require(!args.config_path.empty(), "cbc_node: --config is required");
  cbc::require(args.id != cbc::kNoNode, "cbc_node: --id is required");
  cbc::require(args.discipline == "causal" || args.discipline == "total",
               "cbc_node: --discipline must be causal or total");
  return args;
}

/// Atomic (tmp + rename) key=value file write, so a harness polling the
/// path never reads a partial file.
void write_kv_file(const std::string& path,
                   const std::vector<std::pair<std::string, std::string>>& kv) {
  if (path.empty()) {
    return;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const auto& [key, value] : kv) {
      out << key << "=" << value << "\n";
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::string hex64(std::uint64_t v) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

/// Transparent layer that lets the workload observe deliveries (round
/// markers, departures, sync ops) between the checker and the replica.
class DeliveryTap final : public cbc::ProtocolLayer {
 public:
  using InspectFn = std::function<void(const cbc::Delivery&)>;

  DeliveryTap(std::unique_ptr<cbc::BroadcastMember> lower, InspectFn inspect)
      : ProtocolLayer(std::move(lower)), inspect_(std::move(inspect)) {}

 protected:
  void on_lower_delivery(const cbc::Delivery& delivery) override {
    inspect_(delivery);
    deliver_up(delivery);
  }

 private:
  InspectFn inspect_;
};

cbc::net::UdpTransport::Options make_udp_options(cbc::NodeId id,
                                                 cbc::obs::Hooks obs) {
  cbc::net::UdpTransport::Options options;
  options.local_ids = {id};
  options.obs = std::move(obs);
  return options;
}

cbc::BatchingTransport::Options make_batching_options(cbc::obs::Hooks obs) {
  cbc::BatchingTransport::Options options;
  options.obs = std::move(obs);
  return options;
}

std::unique_ptr<cbc::obs::Tracer> make_tracer(const NodeArgs& args) {
  if (args.trace_path.empty()) {
    return nullptr;
  }
  cbc::obs::Tracer::Options options;
  options.pid = static_cast<std::uint32_t>(args.id);
  options.process_name = "cbc_node " + std::to_string(args.id) + " (" +
                         args.discipline + ")";
  return std::make_unique<cbc::obs::Tracer>(std::move(options));
}

/// Everything one node process owns, wired bottom-up.
class Node {
 public:
  Node(const NodeArgs& args, cbc::net::ClusterConfig config)
      : args_(args),
        config_(std::move(config)),
        loop_(cbc::net::EventLoop::Options{.force_poll = args.force_poll,
                                           .wheel = {}}),
        tracer_(make_tracer(args)),
        udp_(loop_, config_, make_udp_options(args.id, hooks("udp"))),
        batching_(udp_, make_batching_options(hooks("batch"))),
        view_(1, config_.to_view()),
        log_(std::make_shared<cbc::check::ViolationLog>()),
        marker_count_(config_.size(), 0),
        departed_(config_.size(), false) {
    // Ordering member: register on the batching decorator so every frame
    // (data, acks, retransmissions) rides the batch framing.
    std::unique_ptr<cbc::BroadcastMember> member;
    if (args_.discipline == "causal") {
      cbc::OSendMember::Options options;
      options.reliability.enabled = true;
      options.reliability.obs = hooks("reliable");
      options.obs = hooks("osend");
      member = std::make_unique<cbc::OSendMember>(
          batching_, view_, [](const cbc::Delivery&) {}, options);
    } else {
      cbc::ASendMember::Options options;
      options.reliability.enabled = true;
      options.reliability.obs = hooks("reliable");
      options.obs = hooks("asend");
      member = std::make_unique<cbc::ASendMember>(
          batching_, view_, [](const cbc::Delivery&) {}, options);
    }
    if (args_.observability()) {
      member = std::make_unique<cbc::obs::InstrumentationLayer>(
          std::move(member),
          cbc::obs::InstrumentationLayer::Options{hooks("stack")});
    }

    cbc::check::InvariantChecker::Options check_options;
    check_options.obs = hooks("check");
    check_options.expect_total_order = args_.discipline == "total";
    check_options.stable_spec = cbc::apps::Counter::spec();
    // Round markers are ordered relative to the sync chain by the barrier
    // protocol, but a departure nop races the in-flight sync and can land
    // in different stable cycles at different members. Nops are state-
    // inert, so exempt the whole kind from the digest: it then covers
    // exactly the state-affecting history, which IS deterministic.
    check_options.digest_exempt_kinds = {"nop"};
    auto checker = std::make_unique<cbc::check::InvariantChecker>(
        std::move(member), log_, check_options);
    checker_ = checker.get();

    auto tap = std::make_unique<DeliveryTap>(
        std::move(checker),
        [this](const cbc::Delivery& delivery) { on_delivery(delivery); });

    replica_ = std::make_unique<cbc::ReplicaNode<cbc::apps::Counter>>(
        std::move(tap), cbc::apps::Counter::spec(),
        cbc::FrontEndManager::Options{.fifo_chain = true});

    if (args_.metrics_port >= 0) {
      cbc::net::MetricsHttpServer::Options http_options;
      http_options.port = static_cast<std::uint16_t>(args_.metrics_port);
      metrics_http_ = std::make_unique<cbc::net::MetricsHttpServer>(
          loop_, registry_, http_options);
    }
  }

  int run() {
    loop_.post([this] { pump(); });
    arm_tick();
    arm_snapshot();
    loop_.run();
    return 0;
  }

 private:
  [[nodiscard]] bool is_leader() const {
    return args_.id == 0 && !args_.observer;
  }

  /// Observability sinks for one component (empty hooks = everything off
  /// and every instrumented site reduces to one pointer test).
  [[nodiscard]] cbc::obs::Hooks hooks(std::string prefix) {
    if (!args_.observability()) {
      return {};
    }
    return {&registry_, tracer_.get(), std::move(prefix)};
  }

  void arm_tick() {
    // Liveness backstop + signal poll: signals only set flags; this tick
    // turns them into loop-thread actions.
    loop_.schedule(20'000, [this] {
      pump();
      if (!stopping_) {
        arm_tick();
      }
    });
  }

  void arm_snapshot() {
    if (args_.metrics_snapshot_path.empty()) {
      return;
    }
    loop_.schedule(250'000, [this] {
      dump_metrics();
      if (!stopping_) {
        arm_snapshot();
      }
    });
  }

  /// Atomic rewrite of the metrics page (SIGUSR2 or the snapshot timer);
  /// falls back to stderr when no snapshot path was given.
  void dump_metrics() {
    if (!args_.observability()) {
      return;
    }
    const std::string page = registry_.render_prometheus();
    if (args_.metrics_snapshot_path.empty()) {
      std::cerr << page;
      return;
    }
    const std::string tmp = args_.metrics_snapshot_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << page;
    }
    std::rename(tmp.c_str(), args_.metrics_snapshot_path.c_str());
  }

  void write_trace() {
    if (tracer_ == nullptr || args_.trace_path.empty()) {
      return;
    }
    if (!tracer_->write_file(args_.trace_path)) {
      std::cerr << "cbc_node " << args_.id << ": cannot write trace to "
                << args_.trace_path << "\n";
    }
  }

  /// Runs on the loop thread only. Inspects deliveries for workload
  /// control. The replica/checker layers have already processed the
  /// message when the tap fires (tap sits above the checker).
  void on_delivery(const cbc::Delivery& delivery) {
    const std::string kind =
        cbc::CommutativitySpec::kind_of(delivery.label());
    if (kind == "nop") {
      std::uint64_t tag = 0;
      try {
        cbc::Reader reader(delivery.payload());
        tag = reader.u64();
      } catch (const cbc::SerdeError&) {
        return;  // malformed marker payload; counted upstream
      }
      if ((tag & 1) != 0) {
        departed_[delivery.sender] = true;
      } else {
        marker_count_[delivery.sender] += 1;
      }
    } else if (kind == "rd") {
      syncs_delivered_ += 1;
    }
    loop_.post([this] { pump(); });
  }

  void pump() {
    if (stopping_) {
      return;
    }
    if (g_terminate_requested != 0) {
      write_report();
      dump_metrics();
      write_trace();
      stopping_ = true;
      loop_.stop();
      return;
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
    }
    if (args_.observer) {
      write_progress();
      return;
    }
    if (g_depart_requested != 0 && !departure_submitted_) {
      // The departing nop is FIFO-chained after everything this member
      // has submitted, so delivering it proves our whole history arrived.
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(current_round_ + 1) << 1) | 1;
      replica_->submit(cbc::apps::Counter::nop(tag));
      departure_submitted_ = true;
      write_report();  // role=departed; harness collects it pre-restart
      return;
    }
    if (departure_submitted_) {
      return;  // lingering: serve retransmissions until SIGTERM
    }
    if (args_.discipline == "total") {
      pump_total();
      return;
    }
    pump_causal();
  }

  void pump_causal() {
    // Start the next round once the previous round's sync has arrived.
    if (current_round_ + 1 < static_cast<std::int64_t>(args_.rounds) &&
        syncs_delivered_ >= static_cast<std::uint64_t>(current_round_ + 1)) {
      current_round_ += 1;
      for (std::uint64_t op = 0; op < args_.ops_per_round; ++op) {
        replica_->submit(op % 2 == 0 ? cbc::apps::Counter::inc(1)
                                     : cbc::apps::Counter::dec(1));
      }
      replica_->submit(cbc::apps::Counter::nop(
          static_cast<std::uint64_t>(current_round_) << 1));
      write_progress();
    }
    if (is_leader()) {
      maybe_close_round();
    }
    if (!report_written_ && syncs_delivered_ >= args_.rounds) {
      write_report();  // done; keep looping to serve retransmissions
      // A done report promises an on-disk metrics page too — a fast run
      // may finish before the first snapshot tick.
      dump_metrics();
    }
  }

  void maybe_close_round() {
    // Close round r (submit its sync) only when every live member's
    // round-r marker has been delivered here — the sync's Occurs_After
    // set then covers all of round r's commutative traffic, which is what
    // makes cycle membership identical at every member.
    if (syncs_submitted_ != syncs_delivered_ ||
        syncs_submitted_ > static_cast<std::uint64_t>(current_round_) ||
        syncs_submitted_ >= args_.rounds) {
      return;
    }
    const std::uint64_t round = syncs_submitted_;
    for (std::size_t member = 0; member < config_.size(); ++member) {
      if (!departed_[member] && marker_count_[member] < round + 1) {
        return;
      }
    }
    replica_->submit(cbc::apps::Counter::rd());
    syncs_submitted_ += 1;
  }

  void pump_total() {
    // Total-order mode: submit everything up front; the deterministic
    // round merge serializes it identically everywhere. One rd per member
    // closes one cycle per member.
    if (!total_submitted_) {
      total_submitted_ = true;
      for (std::uint64_t op = 0; op < args_.ops_per_round; ++op) {
        replica_->submit(op % 2 == 0 ? cbc::apps::Counter::inc(1)
                                     : cbc::apps::Counter::dec(1));
      }
      replica_->submit(cbc::apps::Counter::rd());
    }
    const std::uint64_t expected =
        config_.size() * (args_.ops_per_round + 1);
    write_progress();
    if (!report_written_ &&
        checker_->delivered_sequence().size() >= expected) {
      write_report();
      dump_metrics();
    }
  }

  void write_progress() {
    if (args_.progress_path.empty()) {
      return;
    }
    write_kv_file(
        args_.progress_path,
        {{"round", std::to_string(current_round_)},
         {"delivered",
          std::to_string(checker_->delivered_sequence().size())},
         {"syncs", std::to_string(syncs_delivered_)}});
  }

  void write_report() {
    if (report_written_) {
      return;
    }
    report_written_ = true;
    const char* role = args_.observer          ? "observer"
                       : departure_submitted_  ? "departed"
                       : is_leader()           ? "leader"
                                               : "worker";
    const auto& digests = checker_->stable_digests();
    const cbc::net::UdpTransport::Stats udp = udp_.stats();
    const auto& stable = replica_->last_stable_state();
    std::vector<std::pair<std::string, std::string>> kv = {
        {"id", std::to_string(args_.id)},
        {"role", role},
        {"done", syncs_delivered_ >= args_.rounds ||
                         args_.discipline == "total"
                     ? "1"
                     : "0"},
        {"rounds_started", std::to_string(current_round_ + 1)},
        {"syncs", std::to_string(syncs_delivered_)},
        {"delivered", std::to_string(checker_->delivered_sequence().size())},
        // The digest chain folds every previous stable point, so
        // (digest_count, digest) summarizes the whole agreed history.
        {"digest_count", std::to_string(digests.size())},
        {"digest", digests.empty() ? "0" : hex64(digests.back())},
        {"stable_counter",
         stable.has_value() ? std::to_string(stable->value()) : "none"},
        {"violations", std::to_string(log_->size())},
        {"malformed", std::to_string(checker_->stats().malformed)},
        {"datagrams_sent", std::to_string(udp.datagrams_sent)},
        {"datagrams_received", std::to_string(udp.datagrams_received)},
        {"backend", loop_.uses_epoll() ? "epoll" : "poll"},
        {"metrics_port", metrics_http_ != nullptr
                             ? std::to_string(metrics_http_->port())
                             : "none"},
    };
    write_kv_file(args_.report_path, kv);
    if (!log_->empty()) {
      std::cerr << "cbc_node " << args_.id
                << ": INVARIANT VIOLATIONS:\n"
                << log_->report();
    }
  }

  NodeArgs args_;
  cbc::net::ClusterConfig config_;
  cbc::net::EventLoop loop_;
  // Registry and tracer precede every component that registers collectors
  // or emits trace events, so they are destroyed last.
  cbc::obs::MetricsRegistry registry_;
  std::unique_ptr<cbc::obs::Tracer> tracer_;
  cbc::net::UdpTransport udp_;
  cbc::BatchingTransport batching_;
  cbc::GroupView view_;
  std::shared_ptr<cbc::check::ViolationLog> log_;
  cbc::check::InvariantChecker* checker_ = nullptr;  // owned via replica_
  std::unique_ptr<cbc::ReplicaNode<cbc::apps::Counter>> replica_;
  std::unique_ptr<cbc::net::MetricsHttpServer> metrics_http_;

  // Workload state (loop-thread-only).
  std::int64_t current_round_ = -1;  // last round whose ops were submitted
  std::uint64_t syncs_delivered_ = 0;
  std::uint64_t syncs_submitted_ = 0;       // leader only
  std::vector<std::uint64_t> marker_count_;  // leader: nops per sender
  std::vector<bool> departed_;               // leader: departure seen
  bool total_submitted_ = false;
  bool departure_submitted_ = false;
  bool report_written_ = false;
  bool stopping_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  struct sigaction usr1 {};
  usr1.sa_handler = on_sigusr1;
  ::sigaction(SIGUSR1, &usr1, nullptr);
  struct sigaction term {};
  term.sa_handler = on_sigterm;
  ::sigaction(SIGTERM, &term, nullptr);
  struct sigaction usr2 {};
  usr2.sa_handler = on_sigusr2;
  ::sigaction(SIGUSR2, &usr2, nullptr);

  try {
    const NodeArgs args = parse_args(argc, argv);
    Node node(args, cbc::net::ClusterConfig::load(args.config_path));
    return node.run();
  } catch (const std::exception& error) {
    std::cerr << "cbc_node: fatal: " << error.what() << "\n";
    return 1;
  }
}
