// cbc_node — one member of a replicated-object group over real UDP.
//
// The replicated object is chosen at runtime (--object counter|registry|
// document|card_game|set|queue — any catalog entry): the object's derived
// commutativity table drives the access protocol, its catalog workload
// hooks generate the round traffic, and its serialize hook feeds digests,
// checkpoints, and state transfer. Runs the full library stack in one
// process:
//
//   UdpTransport (kernel datagrams, EventLoop)
//     -> BatchingTransport (N frames per datagram)
//       -> OSendMember or ASendMember (reliability enabled)
//         -> check::InvariantChecker (digest + invariant assertions)
//           -> delivery tap (workload round tracking)
//             -> ReplicaNode<object::Value>
//
// The workload is round-structured so that stable-point digests are
// deterministic across members even though UDP reorders freely:
//   - every member submits `ops_per_round` FIFO-chained commutative ops
//     (the object's catalog workload hook), then a commutative `nop`
//     round marker (FIFO-chained after them);
//   - the leader (node 0) submits the round's closing sync op (the
//     object's catalog sync op — `rd` for the counter) only after
//     delivering every live member's marker — so the sync message's
//     Occurs_After set covers all of the round's commutative traffic;
//   - members start round r+1 only after delivering sync r.
// Cycle membership is therefore causally forced: any interleaving the
// network produces yields the same digest chain at every member.
//
// Signals:
//   SIGUSR1  graceful departure — broadcast a departing `nop` (which the
//            FIFO chain orders after everything this member sent), stop
//            submitting, keep serving retransmissions until SIGTERM;
//   SIGUSR2  dump a metrics snapshot (to --metrics-snapshot, else stderr);
//   SIGTERM  write the report file (and the trace, with --trace) and exit.
//
// Observability (all off by default; see docs/OBSERVABILITY.md):
//   --metrics-port P      serve Prometheus plaintext on 127.0.0.1:P off the
//                         event loop (0 picks an ephemeral port, written to
//                         the report as metrics_port=...);
//   --metrics-snapshot F  rewrite the metrics page to F every 250ms;
//   --trace F             per-envelope causal tracing, written to F as
//                         Chrome trace-event JSON at SIGTERM.
//
// --observer joins without submitting anything (a restarted member whose
// per-link reliability state died with its previous incarnation: it can
// observe traffic but cannot rejoin the causal past without state
// transfer).
//
// Robustness (see docs/ROBUSTNESS.md):
//   --fault-plan FILE     wrap the UDP transport in a deterministic
//                         ChaosTransport driven by the plan (drop/dup/
//                         delay/reorder per link, scripted partitions and
//                         crash points — a scripted local crash _Exit(137)s
//                         this process);
//   --checkpoint FILE     persist a Checkpoint atomically at every stable
//                         point, and serve it to recovering peers over the
//                         reliable layer's out-of-band frames;
//   --recover             SIGKILL recovery: fetch a live peer's latest
//                         checkpoint (pre-stack state transfer), restore
//                         the replica/checker/ordering state from it, and
//                         re-enter the round workload via a rejoin
//                         handshake with the leader;
//   --transfer-from N     peer to fetch the checkpoint from (default:
//                         the leader, or member 1 when recovering id 0);
//   --suspect-timeout-ms N  heartbeat failure detector: suspect a peer
//                         silent for N ms (0 = detector off, the default);
//                         the leader excludes suspected members from round
//                         closure so the workload outlives a crash;
//   --heartbeat-ms N      explicit heartbeat period on idle links
//                         (default: suspect timeout / 4);
//   --quiesce-at-round K  stop submitting after round K and write
//                         quiesced=1 to the progress file once every sent
//                         frame is acknowledged — the safe point for a
//                         harness to SIGKILL this member.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/install.h"
#include "causal/osend.h"
#include "check/history.h"
#include "check/invariant_checker.h"
#include "check/violation.h"
#include "fault/chaos_transport.h"
#include "fault/checkpoint.h"
#include "fault/fault_plan.h"
#include "fault/state_transfer.h"
#include "group/group_view.h"
#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "net/metrics_http.h"
#include "net/udp_transport.h"
#include "object/catalog.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "obs/flight_recorder.h"
#include "obs/hooks.h"
#include "obs/instrument_layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/replica_node.h"
#include "stack/protocol_layer.h"
#include "total/asend.h"
#include "transport/batching.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace {

volatile std::sig_atomic_t g_depart_requested = 0;
volatile std::sig_atomic_t g_terminate_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_depart_requested = 1; }
void on_sigterm(int) { g_terminate_requested = 1; }
void on_sigusr2(int) { g_dump_requested = 1; }

struct NodeArgs {
  std::string config_path;
  cbc::NodeId id = cbc::kNoNode;
  std::string object = "counter";  ///< catalog name of the replicated object
  std::uint64_t rounds = 10;
  std::uint64_t ops_per_round = 20;
  std::string record_history_path;  ///< write a SiteHistory here at SIGTERM
  std::string report_path;
  std::string progress_path;
  std::string discipline = "causal";  // or "total"
  bool observer = false;
  bool force_poll = false;
  int metrics_port = -1;  // -1 = no metrics endpoint; 0 = ephemeral
  std::string metrics_snapshot_path;
  std::string trace_path;
  std::string flight_path;  ///< file-backed flight ring (survives SIGKILL)

  // Robustness knobs (see the file comment).
  std::string fault_plan_path;
  std::string checkpoint_path;
  bool recover = false;
  cbc::NodeId transfer_from = cbc::kNoNode;
  std::int64_t heartbeat_ms = 0;
  std::int64_t suspect_timeout_ms = 0;
  std::int64_t quiesce_at_round = -1;

  [[nodiscard]] bool observability() const {
    return metrics_port >= 0 || !metrics_snapshot_path.empty() ||
           !trace_path.empty();
  }
};

void usage() {
  std::cerr
      << "usage: cbc_node --config FILE --id N [options]\n"
         "  --config FILE     cluster membership file (id host:port lines)\n"
         "  --id N            this member's id within the config\n"
         "  --object NAME     replicated object from the catalog (counter,\n"
         "                    registry, document, card_game, set, queue;\n"
         "                    default counter)\n"
         "  --record-history FILE  write this member's applied-operation\n"
         "                    history here at SIGTERM (cbc_check input)\n"
         "  --rounds R        workload rounds (default 10)\n"
         "  --ops K           commutative ops per member per round "
         "(default 20)\n"
         "  --report FILE     write the final key=value report here\n"
         "  --progress FILE   rewrite round progress here (for harnesses)\n"
         "  --discipline D    causal (OSend, default) or total (ASend)\n"
         "  --observer        join without submitting (restarted member)\n"
         "  --force-poll      use the poll event-loop backend\n"
         "  --metrics-port P  serve Prometheus plaintext on 127.0.0.1:P\n"
         "                    (0 = ephemeral; the report names the port)\n"
         "  --metrics-snapshot FILE  rewrite the metrics page here "
         "periodically\n"
         "  --trace FILE      write Chrome trace-event JSON here at "
         "SIGTERM\n"
         "  --flight FILE     back the always-on flight ring with FILE\n"
         "                    (survives SIGKILL; decode with cbc_flight)\n"
         "  --fault-plan FILE deterministic fault injection plan\n"
         "  --checkpoint FILE persist a checkpoint at every stable point\n"
         "  --recover         restore from a live peer's checkpoint and "
         "rejoin\n"
         "  --transfer-from N fetch the checkpoint from member N\n"
         "  --suspect-timeout-ms N  suspect peers silent for N ms\n"
         "  --heartbeat-ms N  heartbeat period on idle links\n"
         "  --quiesce-at-round K  stop submitting after round K; write\n"
         "                    quiesced=1 when all sent frames are acked\n";
}

NodeArgs parse_args(int argc, char** argv) {
  NodeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      cbc::require(i + 1 < argc, "cbc_node: flag needs a value: " + flag);
      return argv[++i];
    };
    if (flag == "--config") {
      args.config_path = value();
    } else if (flag == "--id") {
      args.id = static_cast<cbc::NodeId>(std::stoul(value()));
    } else if (flag == "--object") {
      args.object = value();
    } else if (flag == "--record-history") {
      args.record_history_path = value();
    } else if (flag == "--rounds") {
      args.rounds = std::stoull(value());
    } else if (flag == "--ops") {
      args.ops_per_round = std::stoull(value());
    } else if (flag == "--report") {
      args.report_path = value();
    } else if (flag == "--progress") {
      args.progress_path = value();
    } else if (flag == "--discipline") {
      args.discipline = value();
    } else if (flag == "--observer") {
      args.observer = true;
    } else if (flag == "--force-poll") {
      args.force_poll = true;
    } else if (flag == "--metrics-port") {
      args.metrics_port = std::stoi(value());
      cbc::require(args.metrics_port >= 0 && args.metrics_port <= 65535,
                   "cbc_node: --metrics-port out of range");
    } else if (flag == "--metrics-snapshot") {
      args.metrics_snapshot_path = value();
    } else if (flag == "--trace") {
      args.trace_path = value();
    } else if (flag == "--flight") {
      args.flight_path = value();
    } else if (flag == "--fault-plan") {
      args.fault_plan_path = value();
    } else if (flag == "--checkpoint") {
      args.checkpoint_path = value();
    } else if (flag == "--recover") {
      args.recover = true;
    } else if (flag == "--transfer-from") {
      args.transfer_from = static_cast<cbc::NodeId>(std::stoul(value()));
    } else if (flag == "--suspect-timeout-ms") {
      args.suspect_timeout_ms = std::stoll(value());
      cbc::require(args.suspect_timeout_ms > 0,
                   "cbc_node: --suspect-timeout-ms must be positive");
    } else if (flag == "--heartbeat-ms") {
      args.heartbeat_ms = std::stoll(value());
      cbc::require(args.heartbeat_ms > 0,
                   "cbc_node: --heartbeat-ms must be positive");
    } else if (flag == "--quiesce-at-round") {
      args.quiesce_at_round = std::stoll(value());
      cbc::require(args.quiesce_at_round >= 0,
                   "cbc_node: --quiesce-at-round must be >= 0");
    } else {
      usage();
      cbc::require(false, "cbc_node: unknown flag: " + flag);
    }
  }
  cbc::require(!args.config_path.empty(), "cbc_node: --config is required");
  cbc::require(args.id != cbc::kNoNode, "cbc_node: --id is required");
  cbc::require(args.discipline == "causal" || args.discipline == "total",
               "cbc_node: --discipline must be causal or total");
  if (args.recover) {
    cbc::require(args.discipline == "causal",
                 "cbc_node: --recover requires the causal discipline");
    cbc::require(!args.observer, "cbc_node: --recover excludes --observer");
    cbc::require(args.id != 0,
                 "cbc_node: leader recovery is not supported (ROADMAP)");
  }
  if (!args.checkpoint_path.empty()) {
    cbc::require(args.discipline == "causal",
                 "cbc_node: --checkpoint requires the causal discipline");
  }
  if (args.quiesce_at_round >= 0) {
    cbc::require(args.discipline == "causal",
                 "cbc_node: --quiesce-at-round requires the causal "
                 "discipline");
  }
  return args;
}

/// Atomic (tmp + rename) key=value file write, so a harness polling the
/// path never reads a partial file. The tmp name carries the pid so two
/// incarnations racing over one path (a crashed member and its restart)
/// can never interleave writes into one torn tmp file.
void write_kv_file(const std::string& path,
                   const std::vector<std::pair<std::string, std::string>>& kv) {
  if (path.empty()) {
    return;
  }
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const auto& [key, value] : kv) {
      out << key << "=" << value << "\n";
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::string hex64(std::uint64_t v) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

/// Transparent layer that lets the workload observe deliveries (round
/// markers, departures, sync ops) between the checker and the replica.
class DeliveryTap final : public cbc::ProtocolLayer {
 public:
  using InspectFn = std::function<void(const cbc::Delivery&)>;

  DeliveryTap(std::unique_ptr<cbc::BroadcastMember> lower, InspectFn inspect)
      : ProtocolLayer(std::move(lower)), inspect_(std::move(inspect)) {}

 protected:
  void on_lower_delivery(const cbc::Delivery& delivery) override {
    inspect_(delivery);
    deliver_up(delivery);
  }

 private:
  InspectFn inspect_;
};

cbc::net::UdpTransport::Options make_udp_options(cbc::NodeId id,
                                                 cbc::obs::Hooks obs) {
  cbc::net::UdpTransport::Options options;
  options.local_ids = {id};
  options.obs = std::move(obs);
  return options;
}

cbc::BatchingTransport::Options make_batching_options(cbc::obs::Hooks obs) {
  cbc::BatchingTransport::Options options;
  options.obs = std::move(obs);
  return options;
}

std::unique_ptr<cbc::obs::Tracer> make_tracer(const NodeArgs& args) {
  if (args.trace_path.empty()) {
    return nullptr;
  }
  cbc::obs::Tracer::Options options;
  options.pid = static_cast<std::uint32_t>(args.id);
  options.process_name = "cbc_node " + std::to_string(args.id) + " (" +
                         args.discipline + ")";
  return std::make_unique<cbc::obs::Tracer>(std::move(options));
}

/// Everything one node process owns, wired bottom-up.
class Node {
 public:
  Node(const NodeArgs& args, cbc::net::ClusterConfig config,
       std::optional<cbc::fault::Checkpoint> recovered)
      : args_(args),
        config_(std::move(config)),
        loop_(cbc::net::EventLoop::Options{.force_poll = args.force_poll,
                                           .wheel = {}}),
        tracer_(make_tracer(args)),
        udp_(loop_, config_, make_udp_options(args.id, hooks("udp"))),
        chaos_(make_chaos()),
        batching_(chaos_ != nullptr ? static_cast<cbc::Transport&>(*chaos_)
                                    : static_cast<cbc::Transport&>(udp_),
                  make_batching_options(hooks("batch"))),
        view_(1, config_.to_view()),
        log_(std::make_shared<cbc::check::ViolationLog>()),
        marker_count_(config_.size(), 0),
        departed_(config_.size(), false),
        recovered_(std::move(recovered)) {
    // Resolve the replicated object and derive its commutativity table
    // from the sequential spec — the same table every member derives.
    {
      const auto entry = cbc::object::Catalog::instance().find(args_.object);
      cbc::require(entry.has_value(),
                   "cbc_node: unknown --object '" + args_.object + "'");
      entry_ = *entry;
    }
    const cbc::CommutativitySpec derived =
        cbc::object::derive_commutativity(entry_.spec());
    sync_kind_ = entry_.sync_op.kind;
    // Checkpoints are captured at the sync's delivery tap, before the
    // replica applies it — only sound when the sync op is state-inert.
    // Probe that instead of trusting a label.
    {
      const std::unique_ptr<cbc::object::ReplicatedObject> probe =
          entry_.make();
      const std::unique_ptr<cbc::object::ReplicatedObject> before =
          probe->clone();
      cbc::Reader sync_args(entry_.sync_op.args);
      probe->apply(sync_kind_, sync_args);
      sync_inert_ = probe->equals(*before);
    }
    cbc::require(sync_inert_ || !checkpoints_enabled(),
                 "cbc_node: --checkpoint/--recover require a state-inert "
                 "sync op; object '" + args_.object + "' closes rounds "
                 "with mutating '" + sync_kind_ + "'");
    if (args_.observability()) {
      recovery_checkpoints_ =
          &registry_.counter("recovery.checkpoints_written");
      recovery_transfers_ = &registry_.counter("recovery.transfers_served");
      recovery_restored_ = &registry_.gauge("recovery.restored_cycles");
    }
    // The flight ring is process-global and always on; export its
    // occupancy whenever anything scrapes this registry.
    flight_collector_ =
        registry_.register_collector([](cbc::obs::CollectorSink& sink) {
          if (cbc::obs::FlightRecorder* recorder =
                  cbc::obs::flight_recorder()) {
            sink.counter("flight.records", recorder->total_recorded());
            sink.gauge("flight.capacity",
                       static_cast<double>(recorder->capacity()));
          }
        });
    // Ordering member: register on the batching decorator so every frame
    // (data, acks, retransmissions) rides the batch framing.
    std::unique_ptr<cbc::BroadcastMember> member;
    if (args_.discipline == "causal") {
      cbc::OSendMember::Options options;
      configure_reliability(options.reliability);
      options.obs = hooks("osend");
      member = std::make_unique<cbc::OSendMember>(
          batching_, view_, [](const cbc::Delivery&) {}, options);
    } else {
      cbc::ASendMember::Options options;
      configure_reliability(options.reliability);
      options.obs = hooks("asend");
      member = std::make_unique<cbc::ASendMember>(
          batching_, view_, [](const cbc::Delivery&) {}, options);
    }
    if (args_.observability()) {
      member = std::make_unique<cbc::obs::InstrumentationLayer>(
          std::move(member),
          cbc::obs::InstrumentationLayer::Options{hooks("stack")});
    }

    cbc::check::InvariantChecker::Options check_options;
    check_options.obs = hooks("check");
    check_options.expect_total_order = args_.discipline == "total";
    check_options.stable_spec = derived;
    // Round markers are ordered relative to the sync chain by the barrier
    // protocol, but a departure nop races the in-flight sync and can land
    // in different stable cycles at different members. Nops are state-
    // inert, so exempt the whole kind from the digest: it then covers
    // exactly the state-affecting history, which IS deterministic.
    check_options.digest_exempt_kinds = {"nop"};
    auto checker = std::make_unique<cbc::check::InvariantChecker>(
        std::move(member), log_, check_options);
    checker_ = checker.get();

    auto tap = std::make_unique<DeliveryTap>(
        std::move(checker),
        [this](const cbc::Delivery& delivery) { on_delivery(delivery); });

    replica_ = std::make_unique<cbc::ReplicaNode<cbc::object::Value>>(
        std::move(tap), derived,
        cbc::FrontEndManager::Options{.fifo_chain = true},
        cbc::object::Value(entry_.make()));
    if (!args_.record_history_path.empty()) {
      replica_->set_apply_observer(
          [this](const cbc::Delivery& delivery,
                 const std::vector<std::uint8_t>& response) {
            cbc::check::HistoryOp op;
            op.id = delivery.id;
            op.origin = delivery.sender;
            op.label = delivery.label();
            const auto payload = delivery.payload();
            op.args.assign(payload.begin(), payload.end());
            op.deps = delivery.deps().ids();
            op.response = response;
            history_.push_back(std::move(op));
          });
    }

    if (args_.metrics_port >= 0) {
      cbc::net::MetricsHttpServer::Options http_options;
      http_options.port = static_cast<std::uint16_t>(args_.metrics_port);
      metrics_http_ = std::make_unique<cbc::net::MetricsHttpServer>(
          loop_, registry_, http_options);
    }
    if (checkpoints_enabled() && !args_.observer) {
      // Start acknowledging nothing: a frame is only ever acked once a
      // flushed checkpoint covers it, so senders retain (and a restored
      // incarnation can recover) everything in between stable points.
      for (std::size_t m = 0; m < config_.size(); ++m) {
        if (m != args_.id) {
          replica_->osend().set_ack_ceiling(static_cast<cbc::NodeId>(m), 0);
        }
      }
    }
    if (recovered_.has_value()) {
      restore_from_checkpoint();
    }
  }

  int run() {
    loop_.post([this] { pump(); });
    arm_tick();
    arm_snapshot();
    loop_.run();
    return 0;
  }

 private:
  [[nodiscard]] bool is_leader() const {
    return args_.id == 0 && !args_.observer;
  }

  [[nodiscard]] std::unique_ptr<cbc::fault::ChaosTransport> make_chaos() {
    if (args_.fault_plan_path.empty()) {
      return nullptr;
    }
    cbc::fault::ChaosTransport::Options options;
    options.plan = cbc::fault::FaultPlan::load(args_.fault_plan_path);
    options.local_node = args_.id;
    // A scripted crash is a SIGKILL equivalent: no destructors, no report
    // — the harness relaunches with --recover. The flight ring is the
    // only thing persisted (dump() is async-signal-safe; for a
    // file-backed ring it is just a flush of what already survives).
    options.on_crash = [] {
      if (cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder()) {
        recorder->dump();
      }
      std::_Exit(137);
    };
    options.obs = hooks("fault");
    return std::make_unique<cbc::fault::ChaosTransport>(udp_,
                                                        std::move(options));
  }

  void configure_reliability(cbc::ReliableEndpoint::Options& reliability) {
    reliability.enabled = true;
    reliability.obs = hooks("reliable");
    if (args_.suspect_timeout_ms > 0) {
      reliability.suspect_after_us = args_.suspect_timeout_ms * 1000;
      if (args_.heartbeat_ms > 0) {
        reliability.heartbeat_interval_us = args_.heartbeat_ms * 1000;
      }
      reliability.on_liveness = [this](cbc::NodeId peer, bool alive) {
        on_liveness(peer, alive);
      };
    }
    if (args_.discipline == "causal") {
      reliability.oob_handler =
          [this](cbc::NodeId from, std::span<const std::uint8_t> payload) {
            on_oob(from, payload);
          };
    }
  }

  /// Loop thread (reliability timers run on the event loop). The leader
  /// treats a suspected member like a departed one for round closure —
  /// rounds keep closing across a crash — and reverses that the moment
  /// the peer is heard again (or explicitly re-admitted).
  void on_liveness(cbc::NodeId peer, bool alive) {
    if (is_leader() && peer < departed_.size()) {
      departed_[peer] = !alive;
    }
    loop_.post([this] { pump(); });
  }

  /// Serves a recovering peer's StateRequest with the latest stable-point
  /// checkpoint, over the reliable layer's out-of-band frames.
  void on_oob(cbc::NodeId from, std::span<const std::uint8_t> payload) {
    if (!cbc::fault::parse_state_request(payload).has_value() ||
        !latest_checkpoint_.has_value()) {
      return;
    }
    replica_->osend().send_oob(
        from, cbc::fault::encode_state_response(*latest_checkpoint_));
    if (recovery_transfers_ != nullptr) {
      recovery_transfers_->inc();
    }
  }

  /// Rebuilds local state from a live peer's transferred checkpoint, then
  /// marks this member as awaiting the leader's admission. Stable-point
  /// agreement makes the peer's chain interchangeable with our own lost
  /// one — asserted against any pre-crash checkpoint left on disk.
  void restore_from_checkpoint() {
    std::optional<cbc::fault::Checkpoint> own;
    if (!args_.checkpoint_path.empty()) {
      try {
        own = cbc::fault::Checkpoint::load(args_.checkpoint_path);
      } catch (const cbc::InvalidArgument&) {
        // No readable pre-crash checkpoint — nothing to cross-check.
      }
    }
    if (own.has_value()) {
      const std::size_t common = std::min(own->stable_digests.size(),
                                          recovered_->stable_digests.size());
      for (std::size_t c = 0; c < common; ++c) {
        cbc::require(own->stable_digests[c] == recovered_->stable_digests[c],
                     "recovery: stable digest chain diverges from the peer "
                     "at cycle " + std::to_string(c + 1));
      }
      // The pre-crash file can be AHEAD of the transferred snapshot (the
      // peer may not have closed the cycle we flushed last). Acks were
      // capped at our flushed frontier, so senders have pruned everything
      // the fresher chain covers — restore from whichever chain is longer
      // or the pruned prefix can never be retransmitted.
      if (own->cycles > recovered_->cycles) {
        recovered_ = std::move(own);
      }
    }
    const cbc::fault::Checkpoint& snapshot = *recovered_;
    cbc::require(snapshot.frontier.width() == view_.size(),
                 "recovery: checkpoint frontier width does not match the "
                 "cluster view");
    std::map<cbc::NodeId, cbc::SeqNo> floors;
    for (std::size_t rank = 0; rank < view_.size(); ++rank) {
      floors[view_.member_at(rank)] =
          snapshot.frontier.at(static_cast<cbc::NodeId>(rank));
    }
    checker_->restore(snapshot.stable_digests, std::move(floors));
    cbc::Reader state_reader(snapshot.app_state);
    replica_->restore_state(cbc::object::Value::decode(state_reader));
    // Baseline adoption also fast-forwards our send seqs above the
    // frontier's record of our own pre-crash broadcasts, so peers do not
    // discard our first new messages as duplicates.
    replica_->osend().adopt_baseline(snapshot.frontier);
    replica_->front_end().restore(snapshot.last_sync, {});
    syncs_delivered_ = snapshot.cycles;
    current_round_ = static_cast<std::int64_t>(snapshot.cycles) - 1;
    awaiting_admission_ = true;
    latest_checkpoint_ = snapshot;
    apply_ack_ceilings(snapshot);
    if (recovery_restored_ != nullptr) {
      recovery_restored_->set(static_cast<std::int64_t>(snapshot.cycles));
    }
  }

  /// Raises the per-peer ack ceilings to `snapshot`'s frontier: the
  /// reliability layer may now acknowledge exactly what this persisted
  /// checkpoint covers (see OSendMember::set_ack_ceiling).
  void apply_ack_ceilings(const cbc::fault::Checkpoint& snapshot) {
    for (std::size_t rank = 0; rank < view_.size(); ++rank) {
      const cbc::NodeId member = view_.member_at(rank);
      if (member != args_.id) {
        replica_->osend().set_ack_ceiling(
            member, snapshot.frontier.at(static_cast<cbc::NodeId>(rank)));
      }
    }
  }

  /// Observability sinks for one component (empty hooks = everything off
  /// and every instrumented site reduces to one pointer test).
  [[nodiscard]] cbc::obs::Hooks hooks(std::string prefix) {
    if (!args_.observability()) {
      return {};
    }
    return {&registry_, tracer_.get(), std::move(prefix)};
  }

  void arm_tick() {
    // Liveness backstop + signal poll: signals only set flags; this tick
    // turns them into loop-thread actions.
    loop_.schedule(20'000, [this] {
      pump();
      if (!stopping_) {
        arm_tick();
      }
    });
  }

  void arm_snapshot() {
    if (args_.metrics_snapshot_path.empty()) {
      return;
    }
    loop_.schedule(250'000, [this] {
      dump_metrics();
      if (!stopping_) {
        arm_snapshot();
      }
    });
  }

  /// Atomic rewrite of the metrics page (SIGUSR2 or the snapshot timer);
  /// falls back to stderr when no snapshot path was given.
  void dump_metrics() {
    if (!args_.observability()) {
      return;
    }
    const std::string page = registry_.render_prometheus();
    if (args_.metrics_snapshot_path.empty()) {
      std::cerr << page;
      return;
    }
    // pid-unique tmp + rename: never torn, even when a restarted
    // incarnation shares the snapshot path with its crashed predecessor.
    const std::string tmp = args_.metrics_snapshot_path + ".tmp." +
                            std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << page;
    }
    std::rename(tmp.c_str(), args_.metrics_snapshot_path.c_str());
  }

  void write_trace() {
    if (tracer_ == nullptr || args_.trace_path.empty()) {
      return;
    }
    if (!tracer_->write_file(args_.trace_path)) {
      std::cerr << "cbc_node " << args_.id << ": cannot write trace to "
                << args_.trace_path << "\n";
    }
  }

  /// Persists the recorded per-site history for the offline cbc_check
  /// oracle. Written once, at SIGTERM, next to the trace.
  void write_history() {
    if (args_.record_history_path.empty()) {
      return;
    }
    cbc::check::SiteHistory history;
    history.object = args_.object;
    history.site = args_.id;
    history.ops = std::move(history_);
    try {
      history.save(args_.record_history_path);
    } catch (const cbc::InvalidArgument& error) {
      std::cerr << "cbc_node " << args_.id << ": cannot write history to "
                << args_.record_history_path << ": " << error.what() << "\n";
    }
  }

  /// Runs on the loop thread only. Inspects deliveries for workload
  /// control. The replica/checker layers have already processed the
  /// message when the tap fires (tap sits above the checker).
  void on_delivery(const cbc::Delivery& delivery) {
    const std::string kind =
        cbc::CommutativitySpec::kind_of(delivery.label());
    if (kind == "nop") {
      std::uint64_t tag = 0;
      try {
        cbc::Reader reader(delivery.payload());
        tag = reader.u64();
      } catch (const cbc::SerdeError&) {
        return;  // malformed marker payload; counted upstream
      }
      // Low two bits select the in-band marker protocol:
      //   0 round marker   (round << 2)
      //   1 departure      (((round+1) << 2) | 1)
      //   2 rejoin request ((proposed << 12) | (id << 2) | 2)
      //   3 admission      ((granted << 12) | (id << 2) | 3)
      switch (tag & 3) {
        case 0:
          marker_count_[delivery.sender] += 1;
          break;
        case 1:
          departed_[delivery.sender] = true;
          break;
        case 2:
          if (is_leader()) {
            grant_admission(tag);
          }
          break;
        default:
          on_admit(tag);
          break;
      }
    } else if (kind == sync_kind_) {
      syncs_delivered_ += 1;
      if (checkpoints_enabled()) {
        capture_checkpoint(delivery);
      }
    }
    loop_.post([this] { pump(); });
  }

  [[nodiscard]] bool checkpoints_enabled() const {
    return args_.discipline == "causal" &&
           (!args_.checkpoint_path.empty() || args_.recover);
  }

  /// Runs at the sync's delivery tap, where the checkpoint is consistent
  /// by construction: the checker has folded this sync into the digest
  /// chain, the ordering layer's delivered prefix covers exactly the
  /// closed cycles (every next-cycle op causally follows this sync, so
  /// none can have been delivered yet), and the replica — which applies
  /// *after* the tap, but the sync op is state-inert (probed at boot) —
  /// holds the agreed stable-point state. The disk write is deferred to
  /// the next pump.
  void capture_checkpoint(const cbc::Delivery& sync) {
    cbc::fault::Checkpoint snapshot;
    snapshot.node = args_.id;
    snapshot.stable_digests = checker_->stable_digests();
    snapshot.cycles = snapshot.stable_digests.size();
    snapshot.last_sync = sync.id;
    snapshot.frontier = replica_->osend().delivered_prefix();
    cbc::Writer writer;
    replica_->state().encode(writer);
    snapshot.app_state = writer.take();
    latest_checkpoint_ = std::move(snapshot);
    checkpoint_dirty_ = true;
  }

  void flush_checkpoint() {
    if (!checkpoint_dirty_) {
      return;
    }
    checkpoint_dirty_ = false;
    if (!args_.checkpoint_path.empty()) {
      latest_checkpoint_->save(args_.checkpoint_path);
    }
    apply_ack_ceilings(*latest_checkpoint_);
    if (recovery_checkpoints_ != nullptr) {
      recovery_checkpoints_->inc();
    }
  }

  /// Leader side of the rejoin handshake. The granted round is clamped
  /// above every sync already submitted, and the recovering member is
  /// credited with markers for all skipped rounds — round closure then
  /// never waits on history it cannot replay. The admission nop is
  /// commutative: the next sync's Occurs_After set covers it, so the
  /// recovering member learns its start round before it can see the sync
  /// that opens it.
  void grant_admission(std::uint64_t tag) {
    const std::uint64_t proposed = tag >> 12;
    const auto who = static_cast<cbc::NodeId>((tag >> 2) & 0x3FF);
    if (who >= config_.size() || who == args_.id) {
      return;
    }
    const std::uint64_t granted = std::max(proposed, syncs_submitted_ + 1);
    marker_count_[who] = std::max(marker_count_[who], granted);
    departed_[who] = false;
    replica_->submit(cbc::object::nop(
        (granted << 12) | (static_cast<std::uint64_t>(who) << 2) | 3));
  }

  void on_admit(std::uint64_t tag) {
    const auto who = static_cast<cbc::NodeId>((tag >> 2) & 0x3FF);
    if (who != args_.id || !awaiting_admission_) {
      return;
    }
    const std::uint64_t granted = tag >> 12;
    current_round_ = static_cast<std::int64_t>(granted) - 1;
    awaiting_admission_ = false;
    write_progress();
  }

  void pump() {
    if (stopping_) {
      return;
    }
    if (g_terminate_requested != 0) {
      write_report();
      dump_metrics();
      write_trace();
      write_history();
      stopping_ = true;
      loop_.stop();
      return;
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
      if (cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder()) {
        recorder->dump();
      }
    }
    if (args_.observer) {
      write_progress();
      return;
    }
    if (g_depart_requested != 0 && !departure_submitted_) {
      // The departing nop is FIFO-chained after everything this member
      // has submitted, so delivering it proves our whole history arrived.
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(current_round_ + 1) << 2) | 1;
      replica_->submit(cbc::object::nop(tag));
      departure_submitted_ = true;
      write_report();  // role=departed; harness collects it pre-restart
      return;
    }
    if (departure_submitted_) {
      return;  // lingering: serve retransmissions until SIGTERM
    }
    flush_checkpoint();
    if (recovered_.has_value() && !rejoin_submitted_) {
      // Single-shot rejoin: Occurs_After(last restored sync), so every
      // member delivers it inside a cycle the leader has yet to close.
      const std::uint64_t tag = ((syncs_delivered_ + 1) << 12) |
                                (static_cast<std::uint64_t>(args_.id) << 2) |
                                2;
      replica_->submit(cbc::object::nop(tag));
      rejoin_submitted_ = true;
      write_progress();
    }
    if (args_.discipline == "total") {
      pump_total();
      return;
    }
    pump_causal();
  }

  void pump_causal() {
    // Start the next round once the previous round's sync has arrived —
    // unless we are quiesced (submissions stopped for a planned kill) or
    // still waiting for the leader to grant our post-recovery round.
    const bool quiesced_rounds = args_.quiesce_at_round >= 0 &&
                                 current_round_ >= args_.quiesce_at_round;
    if (!awaiting_admission_ && !quiesced_rounds &&
        current_round_ + 1 < static_cast<std::int64_t>(args_.rounds) &&
        syncs_delivered_ >= static_cast<std::uint64_t>(current_round_ + 1)) {
      current_round_ += 1;
      for (std::uint64_t op = 0; op < args_.ops_per_round; ++op) {
        replica_->submit(entry_.workload_op(
            args_.id, static_cast<std::uint64_t>(current_round_), op));
      }
      replica_->submit(cbc::object::nop(
          static_cast<std::uint64_t>(current_round_) << 2));
      write_progress();
    }
    if (quiesced_rounds) {
      write_progress();  // the harness polls for quiesced=1
    }
    if (is_leader()) {
      maybe_close_round();
    }
    if (!report_written_ && syncs_delivered_ >= args_.rounds) {
      write_report();  // done; keep looping to serve retransmissions
      // A done report promises an on-disk metrics page too — a fast run
      // may finish before the first snapshot tick.
      dump_metrics();
    }
  }

  void maybe_close_round() {
    // Close round r (submit its sync) only when every live member's
    // round-r marker has been delivered here — the sync's Occurs_After
    // set then covers all of round r's commutative traffic, which is what
    // makes cycle membership identical at every member.
    if (syncs_submitted_ != syncs_delivered_ ||
        syncs_submitted_ > static_cast<std::uint64_t>(current_round_) ||
        syncs_submitted_ >= args_.rounds) {
      return;
    }
    const std::uint64_t round = syncs_submitted_;
    for (std::size_t member = 0; member < config_.size(); ++member) {
      if (!departed_[member] && marker_count_[member] < round + 1) {
        return;
      }
    }
    replica_->submit(entry_.sync_op);
    syncs_submitted_ += 1;
  }

  void pump_total() {
    // Total-order mode: submit everything up front; the deterministic
    // round merge serializes it identically everywhere. One sync per
    // member closes one cycle per member.
    if (!total_submitted_) {
      total_submitted_ = true;
      for (std::uint64_t op = 0; op < args_.ops_per_round; ++op) {
        replica_->submit(entry_.workload_op(args_.id, 0, op));
      }
      replica_->submit(entry_.sync_op);
    }
    const std::uint64_t expected =
        config_.size() * (args_.ops_per_round + 1);
    write_progress();
    if (!report_written_ &&
        checker_->delivered_sequence().size() >= expected) {
      write_report();
      dump_metrics();
    }
  }

  void write_progress() {
    if (args_.progress_path.empty()) {
      return;
    }
    // quiesced=1 promises the member is safe to SIGKILL: it has stopped
    // submitting, delivered its own quiesce round's sync, and holds no
    // unacknowledged frames — nothing of its history can be orphaned.
    bool quiesced = false;
    if (args_.quiesce_at_round >= 0 && args_.discipline == "causal" &&
        current_round_ >= args_.quiesce_at_round &&
        syncs_delivered_ >
            static_cast<std::uint64_t>(args_.quiesce_at_round)) {
      quiesced = replica_->osend().reliable_quiescent();
    }
    // id/metrics_port ride along so fleet tools (cbc_top) can discover
    // live scrape endpoints before any final report exists.
    write_kv_file(
        args_.progress_path,
        {{"round", std::to_string(current_round_)},
         {"delivered",
          std::to_string(checker_->delivered_sequence().size())},
         {"syncs", std::to_string(syncs_delivered_)},
         {"quiesced", quiesced ? "1" : "0"},
         {"admitted", awaiting_admission_ ? "0" : "1"},
         {"id", std::to_string(args_.id)},
         {"metrics_port", metrics_http_ != nullptr
                              ? std::to_string(metrics_http_->port())
                              : "none"}});
  }

  void write_report() {
    if (report_written_) {
      return;
    }
    report_written_ = true;
    const char* role = args_.observer          ? "observer"
                       : departure_submitted_  ? "departed"
                       : is_leader()           ? "leader"
                                               : "worker";
    const auto& digests = checker_->stable_digests();
    const cbc::net::UdpTransport::Stats udp = udp_.stats();
    const auto& stable = replica_->last_stable_state();
    std::vector<std::pair<std::string, std::string>> kv = {
        {"id", std::to_string(args_.id)},
        {"object", args_.object},
        {"role", role},
        {"done", syncs_delivered_ >= args_.rounds ||
                         args_.discipline == "total"
                     ? "1"
                     : "0"},
        {"rounds_started", std::to_string(current_round_ + 1)},
        {"syncs", std::to_string(syncs_delivered_)},
        {"delivered", std::to_string(checker_->delivered_sequence().size())},
        // The digest chain folds every previous stable point, so
        // (digest_count, digest) summarizes the whole agreed history.
        {"digest_count", std::to_string(digests.size())},
        {"digest", digests.empty() ? "0" : hex64(digests.back())},
        {"stable_state",
         stable.has_value() ? stable->to_string() : "none"},
        {"recovered", args_.recover ? "1" : "0"},
        {"violations", std::to_string(log_->size())},
        {"malformed", std::to_string(checker_->stats().malformed)},
        {"datagrams_sent", std::to_string(udp.datagrams_sent)},
        {"datagrams_received", std::to_string(udp.datagrams_received)},
        {"backend", loop_.uses_epoll() ? "epoll" : "poll"},
        {"metrics_port", metrics_http_ != nullptr
                             ? std::to_string(metrics_http_->port())
                             : "none"},
        {"flight", flight_file()},
    };
    write_kv_file(args_.report_path, kv);
    if (!log_->empty()) {
      std::cerr << "cbc_node " << args_.id
                << ": INVARIANT VIOLATIONS:\n"
                << log_->report();
    }
  }

  /// Where a postmortem of this process would read the flight ring.
  [[nodiscard]] static std::string flight_file() {
    cbc::obs::FlightRecorder* recorder = cbc::obs::flight_recorder();
    if (recorder == nullptr) {
      return "none";
    }
    return recorder->file_backed() ? recorder->options().path
                                   : recorder->options().dump_path;
  }

  NodeArgs args_;
  cbc::net::ClusterConfig config_;
  cbc::net::EventLoop loop_;
  // Registry and tracer precede every component that registers collectors
  // or emits trace events, so they are destroyed last.
  cbc::obs::MetricsRegistry registry_;
  std::unique_ptr<cbc::obs::Tracer> tracer_;
  cbc::net::UdpTransport udp_;
  // Optional fault-injection seam; batching_ rides it when present.
  std::unique_ptr<cbc::fault::ChaosTransport> chaos_;
  cbc::BatchingTransport batching_;
  cbc::GroupView view_;
  std::shared_ptr<cbc::check::ViolationLog> log_;
  cbc::check::InvariantChecker* checker_ = nullptr;  // owned via replica_
  std::unique_ptr<cbc::ReplicaNode<cbc::object::Value>> replica_;
  std::unique_ptr<cbc::net::MetricsHttpServer> metrics_http_;

  // Replicated-object plumbing (resolved once in the constructor).
  cbc::object::CatalogEntry entry_;
  std::string sync_kind_;
  bool sync_inert_ = false;
  std::vector<cbc::check::HistoryOp> history_;  // --record-history buffer

  // Workload state (loop-thread-only).
  std::int64_t current_round_ = -1;  // last round whose ops were submitted
  std::uint64_t syncs_delivered_ = 0;
  std::uint64_t syncs_submitted_ = 0;       // leader only
  std::vector<std::uint64_t> marker_count_;  // leader: nops per sender
  std::vector<bool> departed_;               // leader: departure seen
  bool total_submitted_ = false;
  bool departure_submitted_ = false;
  bool report_written_ = false;
  bool stopping_ = false;

  // Robustness state (loop-thread-only once the loop runs).
  std::optional<cbc::fault::Checkpoint> recovered_;  // transferred at boot
  std::optional<cbc::fault::Checkpoint> latest_checkpoint_;
  bool checkpoint_dirty_ = false;
  bool awaiting_admission_ = false;
  bool rejoin_submitted_ = false;
  cbc::obs::Counter* recovery_checkpoints_ = nullptr;
  cbc::obs::Counter* recovery_transfers_ = nullptr;
  cbc::obs::Gauge* recovery_restored_ = nullptr;
  cbc::obs::CollectorHandle flight_collector_;
};

}  // namespace

int main(int argc, char** argv) {
  struct sigaction usr1 {};
  usr1.sa_handler = on_sigusr1;
  ::sigaction(SIGUSR1, &usr1, nullptr);
  struct sigaction term {};
  term.sa_handler = on_sigterm;
  ::sigaction(SIGTERM, &term, nullptr);
  struct sigaction usr2 {};
  usr2.sa_handler = on_sigusr2;
  ::sigaction(SIGUSR2, &usr2, nullptr);

  try {
    cbc::apps::install_objects();
    const NodeArgs args = parse_args(argc, argv);
    // Always-on flight recorder, installed before any protocol state
    // exists: with --flight the ring lives in a file mapping and
    // survives SIGKILL; otherwise it is in-memory and dumped next to
    // the report on crash points, SIGUSR2, and invariant violations.
    cbc::obs::FlightRecorder::Options flight_options;
    flight_options.node_id = static_cast<std::uint32_t>(args.id);
    flight_options.role = 0;
    flight_options.path = args.flight_path;
    if (args.flight_path.empty()) {
      flight_options.dump_path =
          !args.report_path.empty()
              ? args.report_path + ".flight"
              : "cbc_node" + std::to_string(args.id) + ".flight";
    }
    cbc::obs::FlightRecorder flight(flight_options);
    cbc::obs::install_flight_recorder(&flight);
    cbc::net::ClusterConfig config =
        cbc::net::ClusterConfig::load(args.config_path);
    // Recovery bootstrap runs BEFORE the stack exists: fetch a live
    // peer's latest checkpoint on a raw socket bound to our own address,
    // so no message is ever delivered against pre-restore state.
    std::optional<cbc::fault::Checkpoint> recovered;
    if (args.recover) {
      cbc::NodeId peer = args.transfer_from;
      if (peer == cbc::kNoNode) {
        peer = args.id == 0 ? 1 : 0;
      }
      cbc::require(peer != args.id && peer < config.size(),
                   "cbc_node: --transfer-from must name another member");
      cbc::fault::TransferOptions transfer;
      transfer.self = config.sockaddr_of(args.id);
      transfer.peer = config.sockaddr_of(peer);
      recovered = cbc::fault::fetch_checkpoint_blocking(
          {.requester = args.id, .have = 0}, transfer);
      cbc::require(recovered.has_value(),
                   "cbc_node: state transfer timed out — no checkpoint "
                   "from member " + std::to_string(peer));
    }
    Node node(args, std::move(config), std::move(recovered));
    return node.run();
  } catch (const std::exception& error) {
    std::cerr << "cbc_node: fatal: " << error.what() << "\n";
    return 1;
  }
}
