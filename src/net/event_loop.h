// Single-threaded readiness event loop driving UdpTransport.
//
// One thread — the loop thread — owns every socket and every protocol
// object above it. The loop multiplexes three event sources:
//   - file descriptors (readable), registered with add_fd();
//   - timers, backed by a hashed TimerWheel (timer_wheel.h);
//   - cross-thread work, marshalled in via post()/schedule() and a wakeup
//     descriptor.
//
// Two backends share the same semantics:
//   - epoll (Linux): epoll + eventfd wakeup + timerfd armed at the wheel's
//     next deadline, giving sub-millisecond timer precision;
//   - poll (portable fallback, or Options::force_poll): poll + self-pipe
//     wakeup, timer deadlines rounded up to poll()'s millisecond timeout
//     granularity.
//
// Threading contract: add_fd()/remove_fd() are loop-thread-only once run()
// has started (they may also be called before run(), from the thread that
// will not race run()). post()/schedule()/stop()/now_us() are safe from
// any thread. Handlers and timer actions always run on the loop thread,
// serially — protocol code above the loop needs no locking against the
// loop itself.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "net/timer_wheel.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace cbc::net {

/// Phantom capability standing for "running on the loop thread". It is
/// never locked — it is claimed by EventLoop::assert_in_loop(), whose
/// runtime check backs the static assertion. Loop-confined state is
/// CBC_GUARDED_BY(loop.capability()) and loop-only entry points are
/// CBC_REQUIRES(loop.capability()), so calling one from off-loop without
/// the assert is a compile error under -Wthread-safety.
class CBC_CAPABILITY("loop thread") LoopCapability {};

/// Readiness loop: fds + timer wheel + cross-thread task queue.
class EventLoop {
 public:
  struct Options {
    bool force_poll = false;  ///< use the poll backend even where epoll exists
    TimerWheel::Options wheel;
  };

  EventLoop() : EventLoop(Options{}) {}
  explicit EventLoop(Options options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The loop-thread capability, for annotating loop-confined state and
  /// entry points in code built over this loop.
  [[nodiscard]] const LoopCapability& capability() const {
    return capability_;
  }

  /// Claims the loop-thread capability: statically (the analysis treats
  /// it as held from here on) and dynamically (aborts when called off the
  /// loop thread while the loop runs — defense in depth for gcc builds
  /// and for code paths the analysis cannot see).
  void assert_in_loop() const CBC_ASSERT_CAPABILITY(capability_) {
    require(!running() || in_loop_thread(),
            "EventLoop: loop-thread-only call made off the loop thread");
  }

  /// Registers `fd` for readability; `on_readable` runs on the loop thread
  /// each time the fd becomes readable. Loop-thread-only once running.
  void add_fd(int fd, std::function<void()> on_readable);

  /// Unregisters `fd`. Safe to call from inside its own handler.
  /// Loop-thread-only once running.
  void remove_fd(int fd);

  /// Enqueues `task` to run on the loop thread as soon as possible.
  /// Thread-safe; wakes the loop if it is sleeping.
  void post(std::function<void()> task);

  /// Runs `action` on the loop thread after `delay_us` microseconds (at
  /// wheel granularity; rounded up to 1ms on the poll backend while the
  /// loop is idle). Thread-safe.
  void schedule(SimTime delay_us, std::function<void()> action);

  /// Monotonic microseconds since loop construction. Thread-safe.
  [[nodiscard]] SimTime now_us() const;

  /// Runs the loop on the calling thread until stop(). Re-runnable after a
  /// stop, from any single thread at a time.
  void run();

  /// Asks the loop to return from run() after the current iteration.
  /// Thread-safe and idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// True iff called from the thread currently inside run().
  [[nodiscard]] bool in_loop_thread() const {
    return running() && loop_thread_ == std::this_thread::get_id();
  }

  /// True iff this build uses the epoll backend (false: poll fallback).
  [[nodiscard]] bool uses_epoll() const { return epoll_fd_ >= 0; }

 private:
  struct Watch {
    int fd = -1;
    std::function<void()> on_readable;
  };

  void wake();
  void drain_wakeup();
  void run_posted_tasks() CBC_REQUIRES(capability_);
  void arm_timer_source() CBC_REQUIRES(capability_);
  [[nodiscard]] int poll_timeout_ms() const CBC_REQUIRES(capability_);
  void dispatch_fd(int fd) CBC_REQUIRES(capability_);
  [[nodiscard]] std::size_t watch_index(int fd) const
      CBC_REQUIRES(capability_);

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  LoopCapability capability_;

  // Loop-thread-only state.
  std::vector<Watch> watches_ CBC_GUARDED_BY(capability_);
  TimerWheel wheel_ CBC_GUARDED_BY(capability_);
  std::thread::id loop_thread_;

  // Cross-thread state.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  mutable Mutex pending_mutex_{kRankLoopPending, "loop pending tasks"};
  std::vector<std::function<void()>> pending_
      CBC_GUARDED_BY(pending_mutex_);

  // Backend descriptors. epoll_fd_ < 0 selects the poll backend.
  int epoll_fd_ = -1;
  int timer_fd_ = -1;   // epoll backend: timerfd armed at next wheel deadline
  int wake_read_ = -1;  // eventfd (epoll) or pipe read end (poll)
  int wake_write_ = -1;
};

}  // namespace cbc::net
