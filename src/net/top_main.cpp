// cbc_top — the one-screen cluster view over every node's metrics
// endpoint.
//
//   cbc_top --report progress_s0_r0.txt --report progress_s0_r1.txt ...
//   cbc_top --endpoint 127.0.0.1:9100 --endpoint 127.0.0.1:9101 [--json]
//   cbc_top --report-dir /tmp/cbc_kv_XXXX [--watch 2]
//
// Discovery: each --report names a key=value file a cbc_node/cbc_kv
// process rewrites continuously (its --progress or --report path); the
// `metrics_port=` line carries the live ephemeral scrape port and the
// `id=` or `shard=`/`rank=` lines the process identity. --report-dir
// scans a harness directory for progress*/report* files. --endpoint
// skips discovery and names a scrape target directly.
//
// Each target's /metrics.json (the flat MetricsRegistry::snapshot()) is
// fetched over plain HTTP/1.1 and merged: same-family series are summed
// across processes, except `.p50`/`.p90`/`.p99` percentile estimates,
// which merge by max (an upper bound — percentiles do not add). The
// per-shard section summarizes `kv.context_wait_us` across each shard's
// replicas: summed count, max percentile per quantile.
//
// --json prints one machine-readable object (nodes, merged cluster
// families, per-shard context-wait stats) for CI gates; the default is
// a human one-screen rendering. --watch N redraws every N seconds.
// Exit 0 when every target answered, 1 when any scrape failed, 2 on
// usage errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_lite.h"

namespace {

struct TopArgs {
  std::vector<std::string> endpoints;     // host:port
  std::vector<std::string> report_paths;  // key=value discovery files
  std::vector<std::string> report_dirs;
  bool json = false;
  int timeout_ms = 2000;
  int watch_s = 0;
};

/// One scrape target and what we know about it.
struct Target {
  std::string label;       // "node3", "shard2/0", or the endpoint
  std::string endpoint;    // host:port
  std::optional<int> shard;
  bool up = false;
  std::map<std::string, double> metrics;
};

int usage() {
  std::cerr
      << "usage: cbc_top [--json] [--watch SECONDS] [--timeout-ms N]\n"
         "               [--endpoint HOST:PORT]... [--report FILE]...\n"
         "               [--report-dir DIR]...\n"
         "  --endpoint   scrape this address directly\n"
         "  --report     key=value progress/report file carrying\n"
         "               metrics_port= (and id= or shard=/rank=)\n"
         "  --report-dir scan DIR for progress*/report* files\n"
         "  --json       machine-readable output (CI gates)\n"
         "  --watch N    redraw every N seconds\n";
  return 2;
}

std::optional<TopArgs> parse_args(int argc, char** argv) {
  TopArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) {
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (flag == "--endpoint") {
      const auto v = value();
      if (!v) return std::nullopt;
      args.endpoints.push_back(*v);
    } else if (flag == "--report") {
      const auto v = value();
      if (!v) return std::nullopt;
      args.report_paths.push_back(*v);
    } else if (flag == "--report-dir") {
      const auto v = value();
      if (!v) return std::nullopt;
      args.report_dirs.push_back(*v);
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--timeout-ms") {
      const auto v = value();
      if (!v) return std::nullopt;
      args.timeout_ms = std::stoi(*v);
    } else if (flag == "--watch") {
      const auto v = value();
      if (!v) return std::nullopt;
      args.watch_s = std::stoi(*v);
    } else {
      return std::nullopt;
    }
  }
  if (args.endpoints.empty() && args.report_paths.empty() &&
      args.report_dirs.empty()) {
    return std::nullopt;
  }
  return args;
}

std::map<std::string, std::string> parse_kv_file(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq != std::string::npos) {
      kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return kv;
}

/// Report/progress file -> scrape target. Empty optional when the file
/// is missing, carries no metrics_port, or the process runs without a
/// metrics endpoint.
std::optional<Target> discover(const std::string& path) {
  const auto kv = parse_kv_file(path);
  const auto port = kv.find("metrics_port");
  if (port == kv.end() || port->second == "none" || port->second.empty()) {
    return std::nullopt;
  }
  Target target;
  target.endpoint = "127.0.0.1:" + port->second;
  if (const auto shard = kv.find("shard"); shard != kv.end()) {
    target.shard = std::stoi(shard->second);
    const auto rank = kv.find("rank");
    target.label = "shard" + shard->second + "/" +
                   (rank != kv.end() ? rank->second : "?");
  } else if (const auto id = kv.find("id"); id != kv.end()) {
    target.label = "node" + id->second;
  } else {
    target.label = target.endpoint;
  }
  return target;
}

std::vector<std::string> scan_dir(const std::string& dir) {
  std::vector<std::string> paths;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return paths;
  }
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind("progress", 0) == 0 || name.rfind("report", 0) == 0) {
      paths.push_back(dir + "/" + name);
    }
  }
  ::closedir(handle);
  std::sort(paths.begin(), paths.end());
  return paths;
}

/// Minimal blocking HTTP/1.1 GET against a loopback-style endpoint;
/// returns the response body or nullopt on any failure.
std::optional<std::string> http_get(const std::string& host, int port,
                                    const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::nullopt;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos || response.rfind("HTTP/1.", 0) != 0 ||
      response.find(" 200 ") == std::string::npos ||
      response.find(" 200 ") > response.find("\r\n")) {
    return std::nullopt;
  }
  return response.substr(split + 4);
}

bool scrape(Target& target, int timeout_ms) {
  const std::size_t colon = target.endpoint.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  const std::string host = target.endpoint.substr(0, colon);
  const int port = std::stoi(target.endpoint.substr(colon + 1));
  const auto body = http_get(host, port, "/metrics.json", timeout_ms);
  if (!body) {
    return false;
  }
  try {
    const cbc::obs::JsonValue doc = cbc::obs::json_parse(*body);
    for (const auto& [name, value] : doc.as_object()) {
      target.metrics[name] = value.as_number();
    }
  } catch (const std::exception&) {
    return false;
  }
  target.up = true;
  return true;
}

bool is_percentile(const std::string& name) {
  return name.size() > 4 && (name.compare(name.size() - 4, 4, ".p50") == 0 ||
                             name.compare(name.size() - 4, 4, ".p90") == 0 ||
                             name.compare(name.size() - 4, 4, ".p99") == 0);
}

/// Cluster-wide merge: sum per family, max for percentile estimates
/// (percentiles do not add; max is an honest upper bound).
std::map<std::string, double> merge(const std::vector<Target>& targets) {
  std::map<std::string, double> merged;
  for (const Target& target : targets) {
    for (const auto& [name, value] : target.metrics) {
      if (is_percentile(name)) {
        auto [it, inserted] = merged.emplace(name, value);
        if (!inserted) {
          it->second = std::max(it->second, value);
        }
      } else {
        merged[name] += value;
      }
    }
  }
  return merged;
}

struct ShardWait {
  double count = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Per-shard kv.context_wait_us summary across that shard's replicas.
std::map<int, ShardWait> shard_waits(const std::vector<Target>& targets) {
  std::map<int, ShardWait> shards;
  for (const Target& target : targets) {
    if (!target.shard.has_value() || !target.up) {
      continue;
    }
    ShardWait& wait = shards[*target.shard];
    auto metric = [&](const std::string& name) {
      const auto it = target.metrics.find("kv.context_wait_us" + name);
      return it != target.metrics.end() ? it->second : 0.0;
    };
    wait.count += metric(".count");
    wait.p50 = std::max(wait.p50, metric(".p50"));
    wait.p90 = std::max(wait.p90, metric(".p90"));
    wait.p99 = std::max(wait.p99, metric(".p99"));
  }
  return shards;
}

double metric_or(const Target& target, const std::string& name) {
  const auto it = target.metrics.find(name);
  return it != target.metrics.end() ? it->second : 0.0;
}

void render_human(const std::vector<Target>& targets,
                  const std::map<std::string, double>& cluster,
                  const std::map<int, ShardWait>& shards) {
  std::size_t up = 0;
  for (const Target& target : targets) {
    up += target.up ? 1 : 0;
  }
  auto family = [&](const std::string& name) {
    const auto it = cluster.find(name);
    return it != cluster.end() ? it->second : 0.0;
  };
  std::printf("cbc_top — %zu/%zu endpoints up\n", up, targets.size());
  std::printf(
      "cluster: delivered=%.0f holds=%.0f kv.requests=%.0f "
      "kv.context_waits=%.0f flight.records=%.0f faults=%.0f\n",
      family("osend.delivered"), family("osend.holds"),
      family("kv.requests"), family("kv.context_waits"),
      family("flight.records"),
      family("fault.drops") + family("fault.duplicates") +
          family("fault.delays") + family("fault.reorders"));
  std::printf("%-12s %-16s %-5s %10s %12s %12s %10s\n", "PROCESS",
              "ENDPOINT", "UP", "DELIVERED", "HOLD_P99us", "KVWAIT_P99us",
              "FLIGHT");
  for (const Target& target : targets) {
    std::printf("%-12s %-16s %-5s %10.0f %12.0f %12.0f %10.0f\n",
                target.label.c_str(), target.endpoint.c_str(),
                target.up ? "yes" : "NO",
                metric_or(target, "osend.delivered"),
                metric_or(target, "osend.hold_us.p99"),
                metric_or(target, "kv.context_wait_us.p99"),
                metric_or(target, "flight.records"));
  }
  if (!shards.empty()) {
    std::printf("per-shard kv.context_wait_us:\n");
    for (const auto& [shard, wait] : shards) {
      std::printf("  shard %d: count=%.0f p50=%.0f p90=%.0f p99=%.0f\n",
                  shard, wait.count, wait.p50, wait.p90, wait.p99);
    }
  }
}

std::string render_json(const std::vector<Target>& targets,
                        const std::map<std::string, double>& cluster,
                        const std::map<int, ShardWait>& shards) {
  using cbc::obs::JsonArray;
  using cbc::obs::JsonObject;
  using cbc::obs::JsonValue;
  std::size_t up = 0;
  JsonArray nodes;
  for (const Target& target : targets) {
    up += target.up ? 1 : 0;
    JsonObject node;
    node.emplace("label", JsonValue(target.label));
    node.emplace("endpoint", JsonValue(target.endpoint));
    node.emplace("up", JsonValue(target.up));
    if (target.shard.has_value()) {
      node.emplace("shard", JsonValue(static_cast<double>(*target.shard)));
    }
    JsonObject metrics;
    for (const auto& [name, value] : target.metrics) {
      metrics.emplace(name, JsonValue(value));
    }
    node.emplace("metrics", JsonValue(std::move(metrics)));
    nodes.push_back(JsonValue(std::move(node)));
  }
  JsonObject cluster_object;
  for (const auto& [name, value] : cluster) {
    cluster_object.emplace(name, JsonValue(value));
  }
  JsonObject shards_object;
  for (const auto& [shard, wait] : shards) {
    JsonObject entry;
    entry.emplace("count", JsonValue(wait.count));
    entry.emplace("p50", JsonValue(wait.p50));
    entry.emplace("p90", JsonValue(wait.p90));
    entry.emplace("p99", JsonValue(wait.p99));
    shards_object.emplace(std::to_string(shard), JsonValue(std::move(entry)));
  }
  JsonObject root;
  root.emplace("endpoints", JsonValue(static_cast<double>(targets.size())));
  root.emplace("up", JsonValue(static_cast<double>(up)));
  root.emplace("nodes", JsonValue(std::move(nodes)));
  root.emplace("cluster", JsonValue(std::move(cluster_object)));
  root.emplace("shards", JsonValue(std::move(shards_object)));
  return JsonValue(std::move(root)).dump();
}

int run_once(const TopArgs& args) {
  std::vector<Target> targets;
  for (const std::string& endpoint : args.endpoints) {
    Target target;
    target.endpoint = endpoint.find(':') == std::string::npos
                          ? "127.0.0.1:" + endpoint
                          : endpoint;
    target.label = target.endpoint;
    targets.push_back(std::move(target));
  }
  std::vector<std::string> report_paths = args.report_paths;
  for (const std::string& dir : args.report_dirs) {
    const auto scanned = scan_dir(dir);
    report_paths.insert(report_paths.end(), scanned.begin(), scanned.end());
  }
  // A process is discoverable through both its progress and its report
  // file (--report-dir scans both); scrape each endpoint once or
  // `merge` would double-count its sums.
  std::set<std::string> seen;
  for (const Target& target : targets) {
    seen.insert(target.endpoint);
  }
  for (const std::string& path : report_paths) {
    if (auto target = discover(path)) {
      if (seen.insert(target->endpoint).second) {
        targets.push_back(std::move(*target));
      }
    }
  }
  if (targets.empty()) {
    std::cerr << "cbc_top: no scrape targets discovered\n";
    return 1;
  }
  bool all_up = true;
  for (Target& target : targets) {
    all_up = scrape(target, args.timeout_ms) && all_up;
  }
  const std::map<std::string, double> cluster = merge(targets);
  const std::map<int, ShardWait> shards = shard_waits(targets);
  if (args.json) {
    std::cout << render_json(targets, cluster, shards) << "\n";
  } else {
    render_human(targets, cluster, shards);
  }
  return all_up ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<TopArgs> args = parse_args(argc, argv);
  if (!args) {
    return usage();
  }
  if (args->watch_s <= 0) {
    return run_once(*args);
  }
  for (;;) {
    std::printf("\x1b[2J\x1b[H");  // clear + home
    run_once(*args);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(args->watch_s));
  }
}
