#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"
#include "util/ensure.h"
#include "util/serde.h"

namespace cbc::net {

namespace {

int bind_udp_socket(const sockaddr_in& addr, int buffer_bytes) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ensure(fd >= 0, "UdpTransport: socket() failed");
  // Loopback bursts (a 3-node cluster retransmitting into one host) need
  // deeper queues than the kernel default; best-effort, never fatal.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buffer_bytes,
               sizeof(buffer_bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buffer_bytes,
               sizeof(buffer_bytes));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    throw InvalidArgument("UdpTransport: bind failed: " +
                          std::string(std::strerror(saved)));
  }
  return fd;
}

}  // namespace

UdpTransport::UdpTransport(EventLoop& loop, ClusterConfig config,
                           Options options)
    : loop_(loop), config_(std::move(config)), options_(std::move(options)) {
  if (options_.local_ids.empty()) {
    options_.local_ids = config_.to_view();
  }
  for (const NodeId id : options_.local_ids) {
    require(id < config_.size(),
            "UdpTransport: local id not in the cluster config");
  }
  // Entries must never move once published (cross-thread send() reads the
  // registered prefix without a lock).
  endpoints_.reserve(options_.local_ids.size());
  if (options_.obs.prefix.empty()) {
    options_.obs.prefix = "udp";
  }
  if (options_.obs.has_metrics()) {
    // Scrape-time migration of Stats onto the registry: the struct stays
    // the storage; the collector reads it under the stats lock.
    collector_ = options_.obs.metrics->register_collector(
        [this](obs::CollectorSink& sink) {
          const Stats s = stats();
          const std::string& prefix = options_.obs.prefix;
          sink.counter(prefix + ".datagrams_sent", s.datagrams_sent);
          sink.counter(prefix + ".datagrams_received", s.datagrams_received);
          sink.counter(prefix + ".send_errors", s.send_errors);
          sink.counter(prefix + ".oversize_drops", s.oversize_drops);
          sink.counter(prefix + ".unknown_source", s.unknown_source);
          sink.counter(prefix + ".handler_parse_errors",
                       s.handler_parse_errors);
        });
  }
}

UdpTransport::~UdpTransport() {
  for (Endpoint& endpoint : endpoints_) {
    if (endpoint.fd >= 0) {
      if (loop_.running() && loop_.in_loop_thread()) {
        loop_.remove_fd(endpoint.fd);
      }
      ::close(endpoint.fd);
      endpoint.fd = -1;
    }
  }
}

NodeId UdpTransport::add_endpoint(Handler handler) {
  require(static_cast<bool>(handler), "UdpTransport: empty handler");
  // Pre-run registration (from the not-yet-racing setup thread) or the
  // loop thread itself; a late off-loop call aborts in assert_in_loop.
  loop_.assert_in_loop();
  const std::size_t index = registered_.load(std::memory_order_relaxed);
  require(index < options_.local_ids.size(),
          "UdpTransport: all local ids already registered");
  const NodeId id = options_.local_ids[index];
  const int fd =
      bind_udp_socket(config_.sockaddr_of(id), options_.socket_buffer_bytes);
  endpoints_.push_back(Endpoint{id, fd, std::move(handler)});
  registered_.store(index + 1, std::memory_order_release);
  loop_.add_fd(fd, [this, index] {
    loop_.assert_in_loop();  // fd handlers always run on the loop thread
    on_readable(index);
  });
  return id;
}

std::size_t UdpTransport::endpoint_count() const {
  return registered_.load(std::memory_order_acquire);
}

UdpTransport::Endpoint* UdpTransport::local_endpoint(NodeId id) {
  const std::size_t count = registered_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    if (endpoints_[i].id == id) {
      return &endpoints_[i];
    }
  }
  return nullptr;
}

void UdpTransport::send(NodeId from, NodeId to, SharedBuffer frame) {
  require(static_cast<bool>(frame), "UdpTransport: null frame");
  require(to < config_.size(), "UdpTransport: destination not in config");
  Endpoint* endpoint = local_endpoint(from);
  require(endpoint != nullptr,
          "UdpTransport: send() from an id this process does not host");
  if (frame->size() > options_.max_datagram_bytes) {
    const LockGuard guard(stats_mutex_);
    stats_.oversize_drops += 1;
    return;
  }
  const sockaddr_in dest = config_.sockaddr_of(to);
  const ssize_t n =
      ::sendto(endpoint->fd, frame->data(), frame->size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (n == static_cast<ssize_t>(frame->size()) &&
      obs::tracing(options_.obs)) {
    options_.obs.tracer->instant(
        "udp_send", "udp", obs::Tracer::wall_now_us(),
        "\"to\":" + std::to_string(to) +
            ",\"bytes\":" + std::to_string(frame->size()));
  }
  const LockGuard guard(stats_mutex_);
  if (n == static_cast<ssize_t>(frame->size())) {
    stats_.datagrams_sent += 1;
  } else {
    // UDP is lossy by contract; a full socket buffer is just loss that the
    // reliability layer will mask. Count it and move on.
    stats_.send_errors += 1;
  }
}

void UdpTransport::on_readable(std::size_t endpoint_index) {
  Endpoint& endpoint = endpoints_[endpoint_index];
  for (;;) {
    // Size the buffer exactly: peek the datagram length first so the
    // bytes land once, in a buffer the whole stack can alias.
    const ssize_t peeked =
        ::recv(endpoint.fd, nullptr, 0, MSG_PEEK | MSG_TRUNC);
    if (peeked < 0) {
      ensure(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR,
             "UdpTransport: recv(MSG_PEEK) failed");
      return;
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(peeked));
    sockaddr_in source{};
    socklen_t source_len = sizeof(source);
    const ssize_t n =
        ::recvfrom(endpoint.fd, bytes.data(), bytes.size(), 0,
                   reinterpret_cast<sockaddr*>(&source), &source_len);
    if (n < 0) {
      ensure(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR,
             "UdpTransport: recvfrom failed");
      return;
    }
    bytes.resize(static_cast<std::size_t>(n));

    const std::optional<NodeId> from = config_.node_at(
        ntohl(source.sin_addr.s_addr), ntohs(source.sin_port));
    if (!from.has_value()) {
      const LockGuard guard(stats_mutex_);
      stats_.unknown_source += 1;
      continue;
    }
    {
      const LockGuard guard(stats_mutex_);
      stats_.datagrams_received += 1;
    }
    if (obs::tracing(options_.obs)) {
      options_.obs.tracer->instant(
          "udp_recv", "udp", obs::Tracer::wall_now_us(),
          "\"from\":" + std::to_string(*from) +
              ",\"bytes\":" + std::to_string(bytes.size()));
    }
    const WireFrame frame(make_buffer(std::move(bytes)));
    try {
      endpoint.handler(*from, frame);
    } catch (const SerdeError&) {
      // Untrusted bytes off the wire; the layers above count their own
      // malformed-frame stats, this is the backstop that keeps a corrupt
      // datagram from killing the loop.
      const LockGuard guard(stats_mutex_);
      stats_.handler_parse_errors += 1;
    }
  }
}

void UdpTransport::schedule(SimTime delay_us, std::function<void()> action) {
  loop_.schedule(delay_us, std::move(action));
}

SimTime UdpTransport::now_us() const { return loop_.now_us(); }

UdpTransport::Stats UdpTransport::stats() const {
  const LockGuard guard(stats_mutex_);
  return stats_;
}

}  // namespace cbc::net
