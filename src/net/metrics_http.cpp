#include "net/metrics_http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json_lite.h"
#include "util/ensure.h"

namespace cbc::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ensure(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
         "MetricsHttpServer: fcntl(O_NONBLOCK) failed");
}

/// Blocking best-effort write of the whole response. Responses are a few
/// KB against an empty socket buffer, so in practice one write; a stuck
/// scraper is cut off rather than waited on.
void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // peer gone or buffer full on a nonblocking fd: give up
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Path component of the request line ("GET /metrics.json HTTP/1.1" ->
/// "/metrics.json"); "/" when the line does not parse as a request.
std::string request_path(const std::string& request) {
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    return "/";
  }
  const std::size_t path_start = method_end + 1;
  const std::size_t path_end = request.find_first_of(" \r\n", path_start);
  if (path_end == std::string::npos || path_end == path_start) {
    return "/";
  }
  return request.substr(path_start, path_end - path_start);
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(EventLoop& loop,
                                     obs::MetricsRegistry& registry,
                                     Options options)
    : loop_(loop), registry_(registry), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ensure(listen_fd_ >= 0, "MetricsHttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(options_.bind_addr);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("MetricsHttpServer: bind/listen failed: " +
                          std::string(std::strerror(saved)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ensure(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                       &bound_len) == 0,
         "MetricsHttpServer: getsockname failed");
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
  loop_.add_fd(listen_fd_, [this] {
    loop_.assert_in_loop();  // fd handlers always run on the loop thread
    on_accept();
  });
}

MetricsHttpServer::~MetricsHttpServer() {
  loop_.assert_in_loop();  // dtor contract: loop stopped or loop thread
  for (std::size_t i = connections_.size(); i-- > 0;) {
    close_connection(i);
  }
  if (listen_fd_ >= 0) {
    if (loop_.running() && loop_.in_loop_thread()) {
      loop_.remove_fd(listen_fd_);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      ensure(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
                 errno == ECONNABORTED,
             "MetricsHttpServer: accept failed");
      return;
    }
    set_nonblocking(fd);
    connections_.push_back(Connection{fd, {}});
    loop_.add_fd(fd, [this, fd] {
      loop_.assert_in_loop();
      // Re-locate by fd: earlier closes shift indices.
      for (std::size_t i = 0; i < connections_.size(); ++i) {
        if (connections_[i].fd == fd) {
          on_readable(i);
          return;
        }
      }
    });
  }
}

void MetricsHttpServer::on_readable(std::size_t index) {
  Connection& conn = connections_[index];
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_connection(index);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      close_connection(index);
      return;
    }
    conn.request.append(buf, static_cast<std::size_t>(n));
    if (conn.request.size() > options_.max_request_bytes) {
      close_connection(index);
      return;
    }
    // End of request headers; GETs carry no body worth waiting for.
    if (conn.request.find("\r\n\r\n") != std::string::npos ||
        conn.request.find("\n\n") != std::string::npos) {
      respond_and_close(index);
      return;
    }
  }
}

void MetricsHttpServer::respond_and_close(std::size_t index) {
  const std::string path = request_path(connections_[index].request);
  std::string body;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (path == "/healthz") {
    body = "ok\n";
    content_type = "text/plain; charset=utf-8";
  } else if (path == "/metrics.json") {
    obs::JsonObject object;
    for (const auto& [name, value] : registry_.snapshot()) {
      object.emplace(name, obs::JsonValue(value));
    }
    body = obs::JsonValue(std::move(object)).dump();
    content_type = "application/json";
  } else {
    body = registry_.render_prometheus();
  }
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: " +
      content_type +
      "\r\n"
      "Content-Length: " +
      std::to_string(body.size()) +
      "\r\n"
      "Connection: close\r\n\r\n";
  response += body;
  write_all(connections_[index].fd, response);
  requests_served_ += 1;
  close_connection(index);
}

void MetricsHttpServer::close_connection(std::size_t index) {
  Connection& conn = connections_[index];
  if (conn.fd >= 0) {
    if (loop_.running() && loop_.in_loop_thread()) {
      loop_.remove_fd(conn.fd);
    }
    ::close(conn.fd);
  }
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
}

}  // namespace cbc::net
