#include "net/timer_wheel.h"

#include <algorithm>

#include "util/ensure.h"

namespace cbc::net {

TimerWheel::TimerWheel(Options options) : options_(options) {
  require(options_.granularity_us > 0, "TimerWheel: granularity must be > 0");
  require(options_.slot_count > 0, "TimerWheel: need at least one slot");
  slots_.resize(options_.slot_count);
}

void TimerWheel::schedule_at(SimTime due_us, std::function<void()> action) {
  require(static_cast<bool>(action), "TimerWheel: empty action");
  if (due_us < 0) {
    due_us = 0;
  }
  slots_[slot_of(due_us)].push_back(Entry{due_us, next_seq_++,
                                          std::move(action)});
  armed_ += 1;
}

std::size_t TimerWheel::advance(SimTime now_us) {
  if (armed_ == 0 || now_us < 0) {
    last_advance_us_ = std::max(last_advance_us_, now_us);
    return 0;
  }
  // Walk only the ticks that elapsed since the last advance; cap the walk
  // at one full revolution (beyond that every slot has been visited once).
  const std::uint64_t from_tick =
      static_cast<std::uint64_t>(last_advance_us_ / options_.granularity_us);
  const std::uint64_t to_tick =
      static_cast<std::uint64_t>(now_us / options_.granularity_us);
  const std::uint64_t tick_span = to_tick - from_tick + 1;
  const std::uint64_t walk =
      std::min<std::uint64_t>(tick_span, options_.slot_count);

  std::vector<Entry> due;
  for (std::uint64_t t = 0; t < walk; ++t) {
    // Walk backwards from the current tick so a one-revolution walk still
    // covers every elapsed slot exactly once.
    std::vector<Entry>& slot = slots_[(to_tick - t) % options_.slot_count];
    for (std::size_t i = 0; i < slot.size();) {
      if (slot[i].due_us <= now_us) {
        due.push_back(std::move(slot[i]));
        slot[i] = std::move(slot.back());
        slot.pop_back();
      } else {
        ++i;
      }
    }
  }
  last_advance_us_ = now_us;
  armed_ -= due.size();

  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.due_us != b.due_us ? a.due_us < b.due_us : a.seq < b.seq;
  });
  for (Entry& entry : due) {
    entry.action();
  }
  return due.size();
}

std::optional<SimTime> TimerWheel::next_due_hint() const {
  if (armed_ == 0) {
    return std::nullopt;
  }
  // Exact scan of one revolution from the last-advanced tick. Entries due
  // in a later revolution surface as their slot's tick boundary — an
  // earlier (conservative) bound, never a later one.
  const std::uint64_t base_tick =
      static_cast<std::uint64_t>(last_advance_us_ / options_.granularity_us);
  std::optional<SimTime> best;
  for (std::uint64_t t = 0; t < options_.slot_count; ++t) {
    const std::uint64_t tick = base_tick + t;
    const std::vector<Entry>& slot = slots_[tick % options_.slot_count];
    const SimTime tick_end = static_cast<SimTime>(
        (tick + 1) * static_cast<std::uint64_t>(options_.granularity_us));
    for (const Entry& entry : slot) {
      const SimTime bound = std::min(std::max(entry.due_us, last_advance_us_),
                                     tick_end);
      if (!best.has_value() || bound < *best) {
        best = bound;
      }
    }
    // A hit within this revolution's slot cannot be beaten by a later
    // slot's earliest bound once the bound precedes the next tick start.
    if (best.has_value() &&
        *best <= static_cast<SimTime>(
                     (tick + 1) *
                     static_cast<std::uint64_t>(options_.granularity_us))) {
      break;
    }
  }
  return best;
}

}  // namespace cbc::net
