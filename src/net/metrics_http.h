// MetricsHttpServer — Prometheus-style plaintext exposition off the
// EventLoop.
//
// A deliberately minimal HTTP/1.0 responder: it binds a TCP listen socket
// (port 0 picks an ephemeral port, readable via port() after start) and,
// for every accepted connection, reads until the end of the request
// headers, writes one `200 OK` response, and closes. No keep-alive, no
// TLS, and exactly three routes:
//
//   /healthz       -> "ok\n" (liveness probe; never touches the registry)
//   /metrics.json  -> MetricsRegistry::snapshot() as one flat JSON object
//                     (what `cbc_top` scrapes — machine-readable, no
//                     exposition-format parsing)
//   anything else  -> render_prometheus() plaintext (the scrape page)
//
// All socket work runs on the loop thread (accept and per-connection
// reads are add_fd() handlers), so the scrape serializes with protocol
// handlers and sees a consistent registry snapshot without extra locks.
// Collector callbacks registered by protocol components take their own
// component locks at render time — the documented registry→component
// lock order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace cbc::net {

/// Serves `GET /metrics` (Prometheus plaintext), `/metrics.json`, and
/// `/healthz`.
class MetricsHttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;        ///< 0 = ephemeral; see port()
    std::uint32_t bind_addr = 0x7F000001;  ///< host order; default 127.0.0.1
    std::size_t max_request_bytes = 8 * 1024;  ///< oversized requests drop
  };

  /// Binds and registers the listen socket. Must run before
  /// EventLoop::run() or on the loop thread (same contract as
  /// UdpTransport::add_endpoint). Throws InvalidArgument on bind failure.
  MetricsHttpServer(EventLoop& loop, obs::MetricsRegistry& registry,
                    Options options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound TCP port (the kernel's pick when Options::port was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Connection {
    int fd = -1;
    std::string request;  ///< bytes read so far, until blank line
  };

  // All four run only on the loop thread (fd handlers), so they carry the
  // loop capability statically.
  void on_accept() CBC_REQUIRES(loop_.capability());
  void on_readable(std::size_t index) CBC_REQUIRES(loop_.capability());
  void respond_and_close(std::size_t index) CBC_REQUIRES(loop_.capability());
  void close_connection(std::size_t index) CBC_REQUIRES(loop_.capability());

  EventLoop& loop_;
  obs::MetricsRegistry& registry_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Connection> connections_ CBC_GUARDED_BY(loop_.capability());
  // Bumped on the loop thread; read by the (quiescent) public accessor,
  // so not statically guarded.
  std::uint64_t requests_served_ = 0;
};

}  // namespace cbc::net
