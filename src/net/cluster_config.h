// Static cluster membership: node id -> UDP address.
//
// The paper's group model (§2) assumes a fixed, globally known set of
// members per logical group; view changes are out of scope for the wire
// layer (the causal disciplines carry a view id). ClusterConfig is the
// network-side realization of that assumption: a small text file maps each
// dense NodeId to a host:port, every process loads the same file, and the
// resulting addressing is — like the paper's dependency graphs — "stable
// information, identical at all members".
//
// File format, one member per line, ids dense from 0:
//
//   # comment / blank lines ignored
//   0 127.0.0.1:9100
//   1 127.0.0.1:9101
//   2 192.168.7.20:9100
//
// Hosts are IPv4 dotted quads or the literal "localhost" (no resolver
// dependency — cluster files name concrete interfaces).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace cbc::net {

/// One member's wire address.
struct MemberAddress {
  std::string host;        ///< dotted quad as written in the file
  std::uint16_t port = 0;  ///< UDP port, host byte order
};

/// Immutable id->address map shared by every process of a cluster.
class ClusterConfig {
 public:
  /// Parses the file at `path`; throws InvalidArgument naming the line on
  /// any malformed entry, duplicate or non-dense id, or unreadable file.
  [[nodiscard]] static ClusterConfig load(const std::string& path);

  /// Parses config text directly (used by tests and the harness).
  [[nodiscard]] static ClusterConfig parse(std::string_view text);

  /// Builds an n-member localhost cluster on the given ports.
  [[nodiscard]] static ClusterConfig localhost(
      const std::vector<std::uint16_t>& ports);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const MemberAddress& member(NodeId id) const;

  /// Socket address of `id`, ready for sendto().
  [[nodiscard]] sockaddr_in sockaddr_of(NodeId id) const;

  /// Reverse lookup: which member owns this source address? nullopt for
  /// strangers (UdpTransport counts and drops those datagrams).
  [[nodiscard]] std::optional<NodeId> node_at(std::uint32_t ipv4_host_order,
                                              std::uint16_t port) const;

  /// All member ids, dense 0..size-1 — the initial group view.
  [[nodiscard]] std::vector<NodeId> to_view() const;

 private:
  struct Resolved {
    MemberAddress address;
    std::uint32_t ipv4 = 0;  // host byte order
  };

  std::vector<Resolved> members_;
};

}  // namespace cbc::net
