#include "net/cluster_config.h"

#include <arpa/inet.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/ensure.h"

namespace cbc::net {

namespace {

std::uint32_t parse_ipv4(std::string_view host, std::size_t line_no) {
  std::string text(host == "localhost" ? std::string_view("127.0.0.1") : host);
  in_addr addr{};
  require(::inet_pton(AF_INET, text.c_str(), &addr) == 1,
          "ClusterConfig: line " + std::to_string(line_no) +
              ": host must be an IPv4 dotted quad or 'localhost', got '" +
              std::string(host) + "'");
  return ntohl(addr.s_addr);
}

}  // namespace

ClusterConfig ClusterConfig::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "ClusterConfig: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

ClusterConfig ClusterConfig::parse(std::string_view text) {
  ClusterConfig config;
  std::istringstream lines{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    line_no += 1;
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::uint64_t id = 0;
    std::string endpoint;
    std::string extra;
    require(static_cast<bool>(fields >> id >> endpoint) && !(fields >> extra),
            "ClusterConfig: line " + std::to_string(line_no) +
                ": expected '<id> <host>:<port>'");
    const std::size_t colon = endpoint.rfind(':');
    require(colon != std::string::npos && colon + 1 < endpoint.size(),
            "ClusterConfig: line " + std::to_string(line_no) +
                ": address '" + endpoint + "' is missing ':<port>'");
    const std::string host = endpoint.substr(0, colon);
    std::uint64_t port = 0;
    try {
      port = std::stoull(endpoint.substr(colon + 1));
    } catch (const std::exception&) {
      port = 0;
    }
    require(port >= 1 && port <= 65535,
            "ClusterConfig: line " + std::to_string(line_no) +
                ": port out of range in '" + endpoint + "'");
    require(id == config.members_.size(),
            "ClusterConfig: line " + std::to_string(line_no) +
                ": ids must be dense and ascending from 0, got " +
                std::to_string(id) + " at position " +
                std::to_string(config.members_.size()));
    Resolved resolved;
    resolved.address =
        MemberAddress{host, static_cast<std::uint16_t>(port)};
    resolved.ipv4 = parse_ipv4(host, line_no);
    config.members_.push_back(std::move(resolved));
  }
  require(!config.members_.empty(), "ClusterConfig: no members defined");
  return config;
}

ClusterConfig ClusterConfig::localhost(
    const std::vector<std::uint16_t>& ports) {
  std::ostringstream text;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    text << i << " 127.0.0.1:" << ports[i] << "\n";
  }
  return parse(text.str());
}

const MemberAddress& ClusterConfig::member(NodeId id) const {
  require(id < members_.size(), "ClusterConfig: no such member id");
  return members_[id].address;
}

sockaddr_in ClusterConfig::sockaddr_of(NodeId id) const {
  require(id < members_.size(), "ClusterConfig: no such member id");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(members_[id].ipv4);
  addr.sin_port = htons(members_[id].address.port);
  return addr;
}

std::optional<NodeId> ClusterConfig::node_at(std::uint32_t ipv4_host_order,
                                             std::uint16_t port) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].ipv4 == ipv4_host_order &&
        members_[i].address.port == port) {
      return static_cast<NodeId>(i);
    }
  }
  return std::nullopt;
}

std::vector<NodeId> ClusterConfig::to_view() const {
  std::vector<NodeId> view(members_.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i] = static_cast<NodeId>(i);
  }
  return view;
}

}  // namespace cbc::net
