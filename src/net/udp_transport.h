// cbc::Transport over real nonblocking UDP sockets.
//
// UdpTransport is the first transport whose members live in different
// address spaces: each endpoint binds the UDP socket named by a shared
// ClusterConfig, and frames travel through the kernel network stack (the
// loopback device in tests, a real NIC in deployment). Loss, duplication,
// and reordering are therefore supplied by the kernel and the wire — the
// exact regime ReliableEndpoint and the ordering disciplines are specified
// against, previously only reachable via injected faults.
//
// One process may host any prefix of the cluster's members ("local ids"):
// a cbc_node process hosts exactly one; in-process tests host several,
// whose datagrams still traverse kernel loopback rather than a function
// call. add_endpoint() binds the next local id's socket.
//
// Receive path is zero-copy-after-recv: the datagram size is learned with
// recv(MSG_PEEK|MSG_TRUNC), the bytes land once in an exactly-sized
// SharedBuffer, and the handler's WireFrame (and everything above it —
// batch unpack, reliability sub-frames, envelope parse) aliases that one
// allocation.
//
// Threading contract (see also transport.h):
//  - receive handlers run ONLY on the EventLoop thread, serially;
//  - send()/schedule()/now_us()/stats() are safe from any thread;
//  - add_endpoint() must run before EventLoop::run() or on the loop
//    thread; a late call from another thread throws InvalidArgument
//    (fail-loudly lifecycle, never a silent race).
//
// UDP datagrams are untrusted input: anything a handler throws as a
// SerdeError is caught here, counted in Stats::handler_parse_errors, and
// dropped — a corrupt datagram must never take down the event loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/cluster_config.h"
#include "net/event_loop.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "transport/transport.h"
#include "util/thread_annotations.h"

namespace cbc::net {

/// Transport over nonblocking UDP sockets driven by an EventLoop.
///
/// Fault injection belongs to fault::ChaosTransport (wrap this transport
/// in one) — the old test-only send/recv filter shims are gone.
class UdpTransport final : public Transport {
 public:
  struct Options {
    /// Which cluster members this process hosts, in add_endpoint() order.
    /// Empty means "all of them" (single-process clusters and tests).
    std::vector<NodeId> local_ids;
    std::size_t max_datagram_bytes = 60 * 1024;  ///< send-side size cap
    int socket_buffer_bytes = 1 << 20;  ///< SO_RCVBUF / SO_SNDBUF request
    /// Observability sinks (Stats collector + per-datagram trace
    /// instants when a tracer is attached). Default: off.
    obs::Hooks obs{};
  };

  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t send_errors = 0;     ///< sendto failed (incl. EWOULDBLOCK)
    std::uint64_t oversize_drops = 0;  ///< frame > max_datagram_bytes
    std::uint64_t unknown_source = 0;  ///< datagram from an address not in
                                       ///< the ClusterConfig
    std::uint64_t handler_parse_errors = 0;  ///< SerdeError from a handler
  };

  /// `loop` must outlive the transport. Sockets are bound lazily by
  /// add_endpoint(); the destructor closes them (call after the loop has
  /// stopped, or from the loop thread).
  UdpTransport(EventLoop& loop, ClusterConfig config)
      : UdpTransport(loop, std::move(config), Options{}) {}
  UdpTransport(EventLoop& loop, ClusterConfig config, Options options);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds the next local id's socket and registers it with the loop.
  /// Returns that cluster-wide NodeId. Pre-run or loop-thread only.
  NodeId add_endpoint(Handler handler) override;
  [[nodiscard]] std::size_t endpoint_count() const override;
  using Transport::send;
  void send(NodeId from, NodeId to, SharedBuffer frame) override;
  void schedule(SimTime delay_us, std::function<void()> action) override;
  [[nodiscard]] SimTime now_us() const override;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

 private:
  struct Endpoint {
    NodeId id = kNoNode;
    int fd = -1;
    Handler handler;
  };

  /// Receive path — loop-confined: invoked only by the EventLoop when a
  /// socket turns readable, so it may touch loop-owned state freely.
  void on_readable(std::size_t endpoint_index)
      CBC_REQUIRES(loop_.capability());
  [[nodiscard]] Endpoint* local_endpoint(NodeId id);

  EventLoop& loop_;
  ClusterConfig config_;
  Options options_;

  // Registration appends under the add_endpoint contract; storage is
  // reserved up front so entries never move, and registered_ publishes
  // each fully-written entry — cross-thread send() reads only the
  // published prefix.
  std::vector<Endpoint> endpoints_;
  std::atomic<std::size_t> registered_{0};

  mutable Mutex stats_mutex_{kRankTransport, "udp stats"};
  Stats stats_ CBC_GUARDED_BY(stats_mutex_);
  // Last member: unregisters before the stats it reads are torn down.
  obs::CollectorHandle collector_;
};

}  // namespace cbc::net
