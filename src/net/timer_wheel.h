// Hashed timer wheel backing EventLoop (and through it,
// Transport::schedule for UdpTransport).
//
// The protocol stack arms many short, recurring timers (reliability
// control scans, retransmit periods, batching flush ticks) whose deadlines
// cluster within a few milliseconds. A hashed wheel gives O(1) insertion
// and amortized O(1) expiry for that distribution, where a binary heap
// would pay O(log n) per operation on the hot path. Deadlines hash into
// `slot_count` buckets of `granularity_us` width; entries whose deadline
// lies beyond one wheel revolution simply stay bucketed and are skipped
// until their revolution comes around (the classic "hashed wheel with
// deadline re-check" scheme — no hierarchical cascade needed at our
// horizon of slot_count * granularity_us).
//
// Firing order is deterministic: expired entries fire in (deadline,
// insertion seq) order regardless of slot hashing, so two timers armed for
// the same instant run in the order they were armed — the same contract
// the SimTransport scheduler and ThreadTransport timer thread provide.
//
// Not thread-safe: the owning EventLoop confines all access to the loop
// thread and marshals cross-thread schedule() calls itself.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/types.h"

namespace cbc::net {

/// Single-threaded hashed timer wheel over absolute microsecond deadlines.
class TimerWheel {
 public:
  struct Options {
    SimTime granularity_us = 200;  ///< slot width (timer resolution)
    std::size_t slot_count = 512;  ///< wheel horizon = count * granularity
  };

  TimerWheel() : TimerWheel(Options{}) {}
  explicit TimerWheel(Options options);

  /// Arms `action` for the absolute time `due_us` (clamped to now when in
  /// the past; call advance() to fire it).
  void schedule_at(SimTime due_us, std::function<void()> action);

  /// Fires every timer with deadline <= now_us, in (deadline, arm order).
  /// Actions run outside the wheel's internal state walk, so they may
  /// re-arm timers freely. Returns the number fired.
  std::size_t advance(SimTime now_us);

  /// Absolute deadline of the next armed timer at wheel resolution:
  /// the exact minimum deadline when it lies within the current
  /// revolution, otherwise a conservative earlier bound (never later than
  /// the true deadline, so callers sleeping until the hint cannot
  /// oversleep a timer).
  [[nodiscard]] std::optional<SimTime> next_due_hint() const;

  [[nodiscard]] bool empty() const { return armed_ == 0; }
  [[nodiscard]] std::size_t size() const { return armed_; }

 private:
  struct Entry {
    SimTime due_us = 0;
    std::uint64_t seq = 0;  // arm order, for deterministic ties
    std::function<void()> action;
  };

  [[nodiscard]] std::size_t slot_of(SimTime due_us) const {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(due_us / options_.granularity_us)) %
           options_.slot_count;
  }

  Options options_;
  std::vector<std::vector<Entry>> slots_;
  std::size_t armed_ = 0;
  std::uint64_t next_seq_ = 0;
  SimTime last_advance_us_ = 0;
};

}  // namespace cbc::net
