// Decentralized lock arbitration via totally-ordered messages (§6.2,
// Figure 5).
//
// LOCK requests are *spontaneous* — no causal relation ties one member's
// request to another's — so the paper totally orders them with ASend and
// has every member run the same deterministic arbitration algorithm:
//
//   ASend([LOCK, i, S], Occurs_After([TFR, 1, S-1] ∧ ... ∧ [TFR, M, S-1]))
//   ASend([TFR,  j, S], Occurs_After([LOCK, 1, S] ∧ ... ∧ [LOCK, j, S]))
//
// Arbitration proceeds in cycles S. Once a member has collected the
// predetermined number of LOCK messages for cycle S, it computes the
// holder sequence locally; "since the algorithm is deterministic, all the
// members choose the same next lock holder, thereby ensuring consensus
// among members" — with zero extra message rounds. The lock then walks the
// sequence: each holder broadcasts TFR when done; the last TFR opens
// cycle S+1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "group/group_view.h"
#include "total/asend.h"

namespace cbc {

/// Deterministic choice of holder order within a cycle.
enum class ArbitrationPolicy {
  kByRank,    ///< ascending member rank every cycle
  kRotating,  ///< rank order rotated by the cycle number (fair over time)
};

/// One member of the decentralized lock group.
class LockArbiter {
 public:
  /// Called when this member becomes the holder for `cycle`; the member
  /// performs its critical section and must then call release().
  using AcquiredFn = std::function<void(std::uint64_t cycle)>;

  struct Options {
    /// LOCK messages that must arrive before cycle arbitration runs (the
    /// paper's "specific predetermined number"). 0 means "group size".
    std::size_t requesters_per_cycle = 0;
    ArbitrationPolicy policy = ArbitrationPolicy::kByRank;
    ReliableEndpoint::Options reliability{.enabled = false};
  };

  LockArbiter(Transport& transport, const GroupView& view, AcquiredFn acquired)
      : LockArbiter(transport, view, std::move(acquired), Options{}) {}
  LockArbiter(Transport& transport, const GroupView& view, AcquiredFn acquired,
              Options options);

  /// Injects the total-order member (any discipline delivering one agreed
  /// sequence at every member; ASendMember is the default).
  LockArbiter(std::unique_ptr<BroadcastMember> member, const GroupView& view,
              AcquiredFn acquired, Options options);

  /// Broadcasts this member's LOCK request for its next cycle. At most one
  /// request per cycle per member.
  void request();

  /// Broadcasts TFR; only legal while this member holds the lock.
  void release();

  [[nodiscard]] bool holds_lock() const;
  [[nodiscard]] NodeId id() const { return member_->id(); }

  /// Cycle currently being collected or walked (1-based).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Sequence of (holder, cycle) grants observed — identical at every
  /// member, which is the consensus property tests assert.
  [[nodiscard]] const std::vector<std::pair<NodeId, std::uint64_t>>&
  grant_history() const {
    return grants_;
  }

  /// Underlying total-order member (for message-count stats).
  [[nodiscard]] const BroadcastMember& transport_member() const {
    return *member_;
  }

 private:
  void on_delivery(const Delivery& delivery);
  void arbitrate_if_ready();
  void grant_next();

  const GroupView& view_;
  AcquiredFn acquired_;
  Options options_;
  std::unique_ptr<BroadcastMember> member_;

  std::uint64_t cycle_ = 1;              // cycle being collected/walked
  std::uint64_t next_request_cycle_ = 1; // next cycle this member may request
  bool walking_ = false;                 // cycle_ arbitration done, walking seq
  std::map<std::uint64_t, std::vector<NodeId>> pending_requests_;
  std::vector<NodeId> sequence_;         // holder order of cycle_
  std::size_t sequence_pos_ = 0;         // current holder index in sequence_
  bool tfr_sent_ = false;                // this member already released
  std::vector<std::pair<NodeId, std::uint64_t>> grants_;
};

}  // namespace cbc
