#include "lock/lock_arbiter.h"

#include <algorithm>

#include "util/ensure.h"
#include "util/thread_annotations.h"
#include "util/serde.h"

namespace cbc {

LockArbiter::LockArbiter(Transport& transport, const GroupView& view,
                         AcquiredFn acquired, Options options)
    : LockArbiter(
          std::make_unique<ASendMember>(
              transport, view, [](const Delivery&) {},
              ASendMember::Options{.reliability = options.reliability}),
          view, std::move(acquired), options) {}

LockArbiter::LockArbiter(std::unique_ptr<BroadcastMember> member,
                         const GroupView& view, AcquiredFn acquired,
                         Options options)
    : view_(view),
      acquired_(std::move(acquired)),
      options_(options),
      member_(std::move(member)) {
  require(static_cast<bool>(acquired_), "LockArbiter: empty acquired callback");
  member_->set_deliver(
      [this](const Delivery& delivery) { on_delivery(delivery); });
  if (options_.requesters_per_cycle == 0) {
    options_.requesters_per_cycle = view_.size();
  }
  require(options_.requesters_per_cycle <= view_.size(),
          "LockArbiter: requesters_per_cycle exceeds group size");
}

void LockArbiter::request() {
  const LockGuard guard(member_->stack_mutex());
  Writer args;
  args.u32(member_->id());
  args.u64(next_request_cycle_);
  ++next_request_cycle_;
  member_->broadcast("LOCK", args.take(), DepSpec::none());
}

void LockArbiter::release() {
  const LockGuard guard(member_->stack_mutex());
  require(holds_lock(), "LockArbiter::release: not the holder");
  tfr_sent_ = true;
  Writer args;
  args.u32(member_->id());
  args.u64(cycle_);
  member_->broadcast("TFR", args.take(), DepSpec::none());
}

bool LockArbiter::holds_lock() const {
  // A member holds the lock from its grant until it calls release() —
  // the moment TFR is *sent*, not when it is later processed.
  return walking_ && sequence_pos_ < sequence_.size() &&
         sequence_[sequence_pos_] == member_->id() && !tfr_sent_;
}

void LockArbiter::on_delivery(const Delivery& delivery) {
  Reader args(delivery.payload());
  const NodeId who = args.u32();
  const std::uint64_t for_cycle = args.u64();
  if (delivery.label() == "LOCK") {
    protocol_ensure(view_.contains(who), "LockArbiter: LOCK from non-member");
    pending_requests_[for_cycle].push_back(who);
    arbitrate_if_ready();
    return;
  }
  if (delivery.label() == "TFR") {
    protocol_ensure(walking_, "LockArbiter: TFR outside a cycle walk");
    protocol_ensure(for_cycle == cycle_, "LockArbiter: TFR for wrong cycle");
    protocol_ensure(sequence_pos_ < sequence_.size() &&
                        sequence_[sequence_pos_] == who,
                    "LockArbiter: TFR from a non-holder");
    ++sequence_pos_;
    if (sequence_pos_ < sequence_.size()) {
      grant_next();
      return;
    }
    // Last member of the arbitration sequence transferred: the next lock
    // acquisition cycle (S+1) begins.
    walking_ = false;
    sequence_.clear();
    sequence_pos_ = 0;
    pending_requests_.erase(cycle_);
    ++cycle_;
    arbitrate_if_ready();
    return;
  }
  protocol_ensure(false, "LockArbiter: unknown message label");
}

void LockArbiter::arbitrate_if_ready() {
  if (walking_) {
    return;
  }
  const auto it = pending_requests_.find(cycle_);
  if (it == pending_requests_.end() ||
      it->second.size() < options_.requesters_per_cycle) {
    return;
  }
  // Deterministic arbitration over the first `requesters_per_cycle`
  // requests in total-order arrival (identical at every member).
  std::vector<NodeId> requesters(
      it->second.begin(),
      it->second.begin() +
          static_cast<std::ptrdiff_t>(options_.requesters_per_cycle));
  switch (options_.policy) {
    case ArbitrationPolicy::kByRank:
      std::sort(requesters.begin(), requesters.end());
      break;
    case ArbitrationPolicy::kRotating: {
      const std::uint64_t shift = cycle_ % view_.size();
      std::sort(requesters.begin(), requesters.end(),
                [&](NodeId a, NodeId b) {
                  const auto ra = (*view_.rank_of(a) + view_.size() - shift) %
                                  view_.size();
                  const auto rb = (*view_.rank_of(b) + view_.size() - shift) %
                                  view_.size();
                  return ra < rb;
                });
      break;
    }
  }
  walking_ = true;
  sequence_ = std::move(requesters);
  sequence_pos_ = 0;
  grant_next();
}

void LockArbiter::grant_next() {
  const NodeId holder = sequence_[sequence_pos_];
  grants_.emplace_back(holder, cycle_);
  if (holder == member_->id()) {
    tfr_sent_ = false;
    acquired_(cycle_);
  }
}

}  // namespace cbc
