// The message dependency graph (paper §2.2, §3, Figure 3).
//
// Nodes are messages (with an application-level label); a directed edge
// m -> Msg records the causal relation "Msg occurs after m". Because
// R(M) is *stable* — identical at all members and across executions — the
// graph is the common ground on which members agree about ordering,
// concurrency, and stable points without exchanging extra messages.
//
// The graph supports the queries the rest of the stack needs:
//   - reachability ("does m causally precede m'?")
//   - concurrency ("are m, m' unordered?"  ==  ||{m, m'})
//   - topological orders (the paper's "allowed sequences" of R(M))
//   - valid-delivery-order checking (test oracle)
//   - DOT export (Figure 3 reproduction)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/dep_spec.h"
#include "graph/message_id.h"

namespace cbc {

/// One node of the dependency graph.
struct GraphNode {
  MessageId id;
  std::string label;            ///< application label, e.g. "inc", "LOCK(1,2)"
  std::vector<MessageId> deps;  ///< direct predecessors (sorted)
};

/// Mutable DAG of message dependencies.
///
/// Insertion order is remembered; all query results are deterministic.
/// Edges may reference ids that have not been inserted yet (a dependency
/// on a message this member has not seen) — such edges are retained and
/// become effective when the node arrives, which is exactly the hold-back
/// situation the delivery engine manages.
class MessageGraph {
 public:
  MessageGraph() = default;

  /// Inserts a message with its Occurs_After set. Re-inserting the same id
  /// is an error.
  void add(MessageId id, std::string label, const DepSpec& deps);

  [[nodiscard]] bool contains(MessageId id) const;
  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// Node lookup; nullopt when absent.
  [[nodiscard]] std::optional<GraphNode> node(MessageId id) const;

  /// Direct predecessors of `id` (the Occurs_After conjuncts).
  [[nodiscard]] std::vector<MessageId> direct_deps(MessageId id) const;

  /// Direct successors of `id` among inserted nodes.
  [[nodiscard]] std::vector<MessageId> direct_successors(MessageId id) const;

  /// True when `ancestor` reaches `descendant` through one or more edges
  /// (i.e. ancestor -> descendant in the paper's notation). A node does
  /// not reach itself.
  [[nodiscard]] bool reaches(MessageId ancestor, MessageId descendant) const;

  /// True when neither message causally precedes the other: ||{a, b}.
  [[nodiscard]] bool concurrent(MessageId a, MessageId b) const;

  /// All ancestors of `id` (its causal past), in deterministic order.
  [[nodiscard]] std::vector<MessageId> ancestors(MessageId id) const;

  /// All descendants of `id` (its causal future), in deterministic order.
  [[nodiscard]] std::vector<MessageId> descendants(MessageId id) const;

  /// Nodes with no inserted predecessors.
  [[nodiscard]] std::vector<MessageId> roots() const;

  /// Nodes with no inserted successors.
  [[nodiscard]] std::vector<MessageId> leaves() const;

  /// One deterministic topological order (Kahn's algorithm, insertion-order
  /// tiebreak). Throws LogicError when the graph has a cycle (possible
  /// only if the application names a future message as a dependency in a
  /// crossed pattern — rejected as a specification error).
  [[nodiscard]] std::vector<MessageId> topological_order() const;

  /// Every topological order, up to `cap` sequences (the "allowed
  /// sequences EvSeq_1..EvSeq_L" of §4.1; L can reach (r+1)! so callers
  /// cap it). Deterministic enumeration order.
  [[nodiscard]] std::vector<std::vector<MessageId>> all_topological_orders(
      std::size_t cap = 10000) const;

  /// True when `sequence` is a permutation of the inserted nodes that
  /// respects every edge — i.e. an allowed delivery order of R(M).
  [[nodiscard]] bool is_valid_delivery_order(
      const std::vector<MessageId>& sequence) const;

  /// True when every direct dependency of every node is itself inserted
  /// (no dangling edges): the graph is self-contained.
  [[nodiscard]] bool closed() const;

  /// Removes a node and all edge links touching it. Used by the
  /// stability-driven garbage collector: once a message is known delivered
  /// everywhere, no ordering decision can ever consult it again, so its
  /// node may be dropped. Removing a node that others still depend on
  /// leaves those deps dangling (treated as satisfied-by-absence by the
  /// delivery engine's stable-floor check).
  void remove(MessageId id);

  /// Graphviz DOT rendering (Figure 3 reproduction; stable node order).
  [[nodiscard]] std::string to_dot(const std::string& graph_name = "R") const;

  /// Insertion order of all node ids.
  [[nodiscard]] const std::vector<MessageId>& insertion_order() const {
    return order_;
  }

 private:
  struct Entry {
    GraphNode node;
    std::vector<MessageId> successors;  // inserted nodes depending on this
  };

  [[nodiscard]] const Entry* find(MessageId id) const;

  std::unordered_map<MessageId, Entry> nodes_;
  std::vector<MessageId> order_;  // insertion order
};

}  // namespace cbc
