#include "graph/message_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "util/ensure.h"

namespace cbc {

void MessageGraph::add(MessageId id, std::string label, const DepSpec& deps) {
  require(!id.is_null(), "MessageGraph::add: null id");
  require(!contains(id), "MessageGraph::add: duplicate id");
  Entry entry;
  entry.node.id = id;
  entry.node.label = std::move(label);
  entry.node.deps = deps.ids();
  // Wire up successor links on already-inserted predecessors.
  for (const MessageId& dep : entry.node.deps) {
    auto it = nodes_.find(dep);
    if (it != nodes_.end()) {
      it->second.successors.push_back(id);
    }
  }
  // Older nodes may have named us as a dependency before we arrived.
  for (const auto& existing_id : order_) {
    const Entry& existing = nodes_.at(existing_id);
    if (std::binary_search(existing.node.deps.begin(),
                           existing.node.deps.end(), id)) {
      entry.successors.push_back(existing_id);
    }
  }
  nodes_.emplace(id, std::move(entry));
  order_.push_back(id);
}

bool MessageGraph::contains(MessageId id) const {
  return nodes_.find(id) != nodes_.end();
}

const MessageGraph::Entry* MessageGraph::find(MessageId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::optional<GraphNode> MessageGraph::node(MessageId id) const {
  const Entry* entry = find(id);
  if (entry == nullptr) {
    return std::nullopt;
  }
  return entry->node;
}

std::vector<MessageId> MessageGraph::direct_deps(MessageId id) const {
  const Entry* entry = find(id);
  require(entry != nullptr, "MessageGraph::direct_deps: unknown id");
  return entry->node.deps;
}

std::vector<MessageId> MessageGraph::direct_successors(MessageId id) const {
  const Entry* entry = find(id);
  require(entry != nullptr, "MessageGraph::direct_successors: unknown id");
  std::vector<MessageId> out = entry->successors;
  std::sort(out.begin(), out.end());
  return out;
}

bool MessageGraph::reaches(MessageId ancestor, MessageId descendant) const {
  if (ancestor == descendant) {
    return false;
  }
  const Entry* start = find(ancestor);
  if (start == nullptr || !contains(descendant)) {
    return false;
  }
  std::unordered_set<MessageId> visited;
  std::deque<MessageId> frontier(start->successors.begin(),
                                 start->successors.end());
  while (!frontier.empty()) {
    const MessageId current = frontier.front();
    frontier.pop_front();
    if (current == descendant) {
      return true;
    }
    if (!visited.insert(current).second) {
      continue;
    }
    const Entry* entry = find(current);
    if (entry != nullptr) {
      frontier.insert(frontier.end(), entry->successors.begin(),
                      entry->successors.end());
    }
  }
  return false;
}

bool MessageGraph::concurrent(MessageId a, MessageId b) const {
  require(contains(a) && contains(b), "MessageGraph::concurrent: unknown id");
  if (a == b) {
    return false;
  }
  return !reaches(a, b) && !reaches(b, a);
}

std::vector<MessageId> MessageGraph::ancestors(MessageId id) const {
  require(contains(id), "MessageGraph::ancestors: unknown id");
  std::unordered_set<MessageId> visited;
  std::deque<MessageId> frontier;
  for (const MessageId& dep : find(id)->node.deps) {
    frontier.push_back(dep);
  }
  std::vector<MessageId> out;
  while (!frontier.empty()) {
    const MessageId current = frontier.front();
    frontier.pop_front();
    if (!contains(current) || !visited.insert(current).second) {
      continue;
    }
    out.push_back(current);
    for (const MessageId& dep : find(current)->node.deps) {
      frontier.push_back(dep);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MessageId> MessageGraph::descendants(MessageId id) const {
  require(contains(id), "MessageGraph::descendants: unknown id");
  std::unordered_set<MessageId> visited;
  std::deque<MessageId> frontier(find(id)->successors.begin(),
                                 find(id)->successors.end());
  std::vector<MessageId> out;
  while (!frontier.empty()) {
    const MessageId current = frontier.front();
    frontier.pop_front();
    if (!visited.insert(current).second) {
      continue;
    }
    out.push_back(current);
    const Entry* entry = find(current);
    if (entry != nullptr) {
      frontier.insert(frontier.end(), entry->successors.begin(),
                      entry->successors.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<MessageId> MessageGraph::roots() const {
  std::vector<MessageId> out;
  for (const MessageId& id : order_) {
    const Entry& entry = nodes_.at(id);
    const bool has_inserted_dep =
        std::any_of(entry.node.deps.begin(), entry.node.deps.end(),
                    [this](const MessageId& dep) { return contains(dep); });
    if (!has_inserted_dep) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<MessageId> MessageGraph::leaves() const {
  std::vector<MessageId> out;
  for (const MessageId& id : order_) {
    if (nodes_.at(id).successors.empty()) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<MessageId> MessageGraph::topological_order() const {
  // Kahn's algorithm; the ready list is kept in insertion order so the
  // result is deterministic.
  std::unordered_map<MessageId, std::size_t> pending_deps;
  for (const MessageId& id : order_) {
    const Entry& entry = nodes_.at(id);
    std::size_t count = 0;
    for (const MessageId& dep : entry.node.deps) {
      if (contains(dep)) {
        ++count;
      }
    }
    pending_deps[id] = count;
  }
  std::vector<MessageId> ready;
  for (const MessageId& id : order_) {
    if (pending_deps[id] == 0) {
      ready.push_back(id);
    }
  }
  std::vector<MessageId> out;
  out.reserve(order_.size());
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    const MessageId current = ready[cursor++];
    out.push_back(current);
    std::vector<MessageId> successors = nodes_.at(current).successors;
    std::sort(successors.begin(), successors.end());
    for (const MessageId& next : successors) {
      if (--pending_deps[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  ensure(out.size() == order_.size(),
         "MessageGraph::topological_order: dependency cycle detected");
  return out;
}

std::vector<std::vector<MessageId>> MessageGraph::all_topological_orders(
    std::size_t cap) const {
  std::vector<std::vector<MessageId>> results;
  std::unordered_map<MessageId, std::size_t> pending_deps;
  for (const MessageId& id : order_) {
    std::size_t count = 0;
    for (const MessageId& dep : nodes_.at(id).node.deps) {
      if (contains(dep)) {
        ++count;
      }
    }
    pending_deps[id] = count;
  }
  std::vector<MessageId> current;
  current.reserve(order_.size());
  std::unordered_set<MessageId> used;

  // Depth-first enumeration over the "ready" frontier; candidates are tried
  // in sorted-id order so the enumeration is deterministic.
  std::function<void()> recurse = [&] {
    if (results.size() >= cap) {
      return;
    }
    if (current.size() == order_.size()) {
      results.push_back(current);
      return;
    }
    std::vector<MessageId> candidates;
    for (const MessageId& id : order_) {
      if (used.count(id) == 0 && pending_deps[id] == 0) {
        candidates.push_back(id);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (const MessageId& id : candidates) {
      used.insert(id);
      current.push_back(id);
      std::vector<std::pair<MessageId, bool>> touched;
      for (const MessageId& next : nodes_.at(id).successors) {
        --pending_deps[next];
      }
      recurse();
      for (const MessageId& next : nodes_.at(id).successors) {
        ++pending_deps[next];
      }
      (void)touched;
      current.pop_back();
      used.erase(id);
      if (results.size() >= cap) {
        return;
      }
    }
  };
  recurse();
  return results;
}

bool MessageGraph::is_valid_delivery_order(
    const std::vector<MessageId>& sequence) const {
  if (sequence.size() != order_.size()) {
    return false;
  }
  std::unordered_set<MessageId> seen;
  for (const MessageId& id : sequence) {
    const Entry* entry = find(id);
    if (entry == nullptr || seen.count(id) != 0) {
      return false;
    }
    for (const MessageId& dep : entry->node.deps) {
      if (contains(dep) && seen.count(dep) == 0) {
        return false;  // a declared predecessor was not delivered first
      }
    }
    seen.insert(id);
  }
  return true;
}

bool MessageGraph::closed() const {
  for (const MessageId& id : order_) {
    for (const MessageId& dep : nodes_.at(id).node.deps) {
      if (!contains(dep)) {
        return false;
      }
    }
  }
  return true;
}

void MessageGraph::remove(MessageId id) {
  const auto it = nodes_.find(id);
  require(it != nodes_.end(), "MessageGraph::remove: unknown id");
  // Unlink from predecessors' successor lists.
  for (const MessageId& dep : it->second.node.deps) {
    const auto dep_it = nodes_.find(dep);
    if (dep_it != nodes_.end()) {
      auto& successors = dep_it->second.successors;
      successors.erase(std::remove(successors.begin(), successors.end(), id),
                       successors.end());
    }
  }
  nodes_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
}

std::string MessageGraph::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  rankdir=TB;\n";
  for (const MessageId& id : order_) {
    const Entry& entry = nodes_.at(id);
    out << "  \"" << id.to_string() << "\" [label=\"" << entry.node.label
        << "\\n" << id.to_string() << "\"];\n";
  }
  for (const MessageId& id : order_) {
    const Entry& entry = nodes_.at(id);
    for (const MessageId& dep : entry.node.deps) {
      // Edge direction follows the paper's Figure 3: ancestor -> descendant.
      out << "  \"" << dep.to_string() << "\" -> \"" << id.to_string()
          << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace cbc
