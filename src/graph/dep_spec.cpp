#include "graph/dep_spec.h"

#include <algorithm>
#include <sstream>

namespace cbc {

DepSpec DepSpec::after(MessageId m) {
  DepSpec spec;
  spec.add(m);
  return spec;
}

DepSpec DepSpec::after_all(std::vector<MessageId> ms) {
  DepSpec spec;
  for (const MessageId& m : ms) {
    spec.add(m);
  }
  return spec;
}

DepSpec DepSpec::after_all(std::initializer_list<MessageId> ms) {
  return after_all(std::vector<MessageId>(ms));
}

void DepSpec::add(MessageId m) {
  if (m.is_null()) {
    return;
  }
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), m);
  if (it == ids_.end() || *it != m) {
    ids_.insert(it, m);
  }
}

bool DepSpec::depends_on(MessageId m) const {
  return std::binary_search(ids_.begin(), ids_.end(), m);
}

std::string DepSpec::to_string() const {
  if (ids_.empty()) {
    return "after(null)";
  }
  std::ostringstream out;
  out << "after(";
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out << " & ";
    out << ids_[i].to_string();
  }
  out << ")";
  return out.str();
}

void DepSpec::encode(Writer& writer) const {
  writer.u32(static_cast<std::uint32_t>(ids_.size()));
  for (const MessageId& id : ids_) {
    id.encode(writer);
  }
}

DepSpec DepSpec::decode(Reader& reader) {
  const std::uint32_t count = reader.u32();
  DepSpec spec;
  for (std::uint32_t i = 0; i < count; ++i) {
    spec.add(MessageId::decode(reader));
  }
  return spec;
}

}  // namespace cbc
