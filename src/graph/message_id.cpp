#include "graph/message_id.h"

namespace cbc {

std::string MessageId::to_string() const {
  if (is_null()) {
    return "null";
  }
  return "s" + std::to_string(sender) + ":" + std::to_string(seq);
}

void MessageId::encode(Writer& writer) const {
  writer.u32(sender);
  writer.u64(seq);
}

MessageId MessageId::decode(Reader& reader) {
  MessageId id;
  id.sender = reader.u32();
  id.seq = reader.u64();
  return id;
}

}  // namespace cbc
