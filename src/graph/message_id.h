// Globally unique message identifiers.
//
// A MessageId is (sender, per-sender sequence number). Senders assign
// sequence numbers in send order, so ids are unique without coordination
// and cheap to encode in Occurs_After dependency lists.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/serde.h"
#include "util/types.h"

namespace cbc {

/// Identity of one broadcast message: who sent it and its send-order index
/// at that sender (1-based; 0 is reserved for the null id).
struct MessageId {
  NodeId sender = kNoNode;
  SeqNo seq = 0;

  /// The null id — used to express Occurs_After(NULL), i.e. no constraint.
  static constexpr MessageId null() { return MessageId{}; }

  [[nodiscard]] bool is_null() const { return sender == kNoNode && seq == 0; }

  auto operator<=>(const MessageId&) const = default;

  /// "s<sender>:<seq>" (or "null").
  [[nodiscard]] std::string to_string() const;

  void encode(Writer& writer) const;
  static MessageId decode(Reader& reader);
};

}  // namespace cbc

template <>
struct std::hash<cbc::MessageId> {
  std::size_t operator()(const cbc::MessageId& id) const noexcept {
    // Splitmix-style mix of the two fields.
    std::uint64_t x = (static_cast<std::uint64_t>(id.sender) << 48) ^ id.seq;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
