// Occurs_After dependency specifications — the argument of OSend.
//
// The paper's OSend primitive (§3.1) carries an ordering predicate:
//
//   OSend(Msg, Group, Occurs_After(m))                 single dependency
//   Occurs_After(Msg, (m1 AND m2 AND ...))             one-to-many (eq. 3)
//   Occurs_After(m = NULL)                             unconstrained
//
// A DepSpec is the conjunction of message ids that must all have been
// processed before the carrying message may be delivered. Dependencies are
// *stable* application information: once named, they are guaranteed
// eventually satisfiable at every member (§3.1).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "graph/message_id.h"
#include "util/serde.h"

namespace cbc {

/// AND-set of predecessor message ids. Empty set == Occurs_After(NULL).
class DepSpec {
 public:
  /// No ordering constraint (Occurs_After(NULL)).
  static DepSpec none() { return DepSpec{}; }

  /// Occurs_After(m).
  static DepSpec after(MessageId m);

  /// Occurs_After(m1 AND m2 AND ...). Null ids are ignored; duplicates
  /// are collapsed.
  static DepSpec after_all(std::vector<MessageId> ms);
  static DepSpec after_all(std::initializer_list<MessageId> ms);

  /// Adds one more conjunct (ignored when null or already present).
  void add(MessageId m);

  /// The conjunct ids, sorted and unique.
  [[nodiscard]] const std::vector<MessageId>& ids() const { return ids_; }

  [[nodiscard]] bool empty() const { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

  /// True when `m` is one of the conjuncts.
  [[nodiscard]] bool depends_on(MessageId m) const;

  bool operator==(const DepSpec& other) const = default;

  /// "after(s0:1 & s2:4)" or "after(null)".
  [[nodiscard]] std::string to_string() const;

  void encode(Writer& writer) const;
  static DepSpec decode(Reader& reader);

 private:
  std::vector<MessageId> ids_;  // sorted, unique, no null ids
};

}  // namespace cbc
