// Adapter<T> lifts one of the concrete src/apps state machines — value
// types with apply/encode/decode/operator==/to_string — into the
// ReplicatedObject interface without disturbing their value-semantic API
// (which tests, benches, and the appcons protocol keep using directly).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "object/replicated_object.h"
#include "util/serde.h"

namespace cbc::object {

template <typename T>
class Adapter final : public ReplicatedObject {
 public:
  explicit Adapter(std::string type_name, T state = {})
      : type_name_(std::move(type_name)), state_(std::move(state)) {}

  [[nodiscard]] std::string type_name() const override { return type_name_; }

  std::vector<std::uint8_t> apply(std::string_view kind,
                                  Reader& args) override {
    return state_.apply(kind, args);
  }

  void encode(Writer& writer) const override { state_.encode(writer); }

  void restore(Reader& reader) override { state_ = T::decode(reader); }

  [[nodiscard]] std::unique_ptr<ReplicatedObject> clone() const override {
    return std::make_unique<Adapter>(*this);
  }

  [[nodiscard]] bool equals(const ReplicatedObject& other) const override {
    const auto* peer = dynamic_cast<const Adapter*>(&other);
    return peer != nullptr && state_ == peer->state_;
  }

  [[nodiscard]] std::string to_string() const override {
    return state_.to_string();
  }

  [[nodiscard]] const T& state() const { return state_; }
  [[nodiscard]] T& state() { return state_; }

 private:
  std::string type_name_;
  T state_;
};

}  // namespace cbc::object
