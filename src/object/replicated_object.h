// Spec-defined replicated objects (§5.2's "arbitrary shared data" and
// PAPERS.md: extending causal consistency to any object defined by a
// sequential specification).
//
// The paper's replica protocol (§6.1) is object-agnostic: any state
// machine can ride the causal discipline provided the access protocol
// knows which operation pairs commute. A ReplicatedObject packages that
// contract — op set, transition function, serialized state — behind one
// interface, so replicas, checkpoints, state transfer, and the offline
// history checker handle "the object" without knowing which one. The
// commutativity relation is NOT hand-labelled: it is derived by probing
// op pairs against the object's own sequential specification
// (object/sequential_spec.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/serde.h"

namespace cbc::object {

/// One operation as a client submits it: the kind (the label prefix the
/// front-end manager classifies by) plus serde-encoded arguments. The
/// per-app Op builders in src/apps all produce this type.
struct Op {
  std::string kind;
  std::vector<std::uint8_t> args;
};

/// The universal inert marker every replicated object understands: kind
/// "nop", args = one u64 tag. Cluster workloads use it for in-band round/
/// departure/admission markers (src/net/node_main.cpp): being commutative
/// it joins the open causal cycle, being inert it cannot perturb the
/// object.
[[nodiscard]] Op nop(std::uint64_t tag);

/// FNV-1a 64-bit over a byte span — the content digest used for object
/// state digests and read-your-state responses (e.g. Document::publish).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// Abstract replicated state machine. Implementations must be
/// deterministic: apply() depends only on the current state and the
/// operation — that determinism is what lets every member reach the same
/// state from the same causal order, and what lets the sequential spec be
/// probed for commutativity.
class ReplicatedObject {
 public:
  virtual ~ReplicatedObject() = default;

  /// The catalog name of this object's type ("counter", "set", ...).
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Applies one operation and returns its *response*: empty for pure
  /// updates, the observed value for reads. The response is part of the
  /// sequential specification — two ops commute only when swapping them
  /// changes neither the final state nor either response.
  virtual std::vector<std::uint8_t> apply(std::string_view kind,
                                          Reader& args) = 0;

  /// Snapshot serialization (checkpointing / joiner state transfer).
  virtual void encode(Writer& writer) const = 0;

  /// Replaces this object's state with a decoded snapshot.
  virtual void restore(Reader& reader) = 0;

  [[nodiscard]] virtual std::unique_ptr<ReplicatedObject> clone() const = 0;

  /// Semantic state equality (replica agreement checks).
  [[nodiscard]] virtual bool equals(const ReplicatedObject& other) const = 0;

  [[nodiscard]] virtual std::string to_string() const = 0;

  /// Digest of the serialized state (reports, publish responses).
  [[nodiscard]] std::uint64_t state_digest() const;
};

}  // namespace cbc::object
