#include "object/sequential_spec.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "util/ensure.h"

namespace cbc::object {

namespace {

std::vector<std::uint8_t> apply_op(ReplicatedObject& obj, const Op& op) {
  Reader args(op.args);
  return obj.apply(op.kind, args);
}

/// Swap test from one base state: a;b and b;a must agree on the final
/// state AND on both responses — a read that observes a different value
/// depending on order does not commute even when the state does.
bool commute_from(const ReplicatedObject& base, const Op& a, const Op& b) {
  const std::unique_ptr<ReplicatedObject> ab = base.clone();
  const std::vector<std::uint8_t> ra1 = apply_op(*ab, a);
  const std::vector<std::uint8_t> rb1 = apply_op(*ab, b);
  const std::unique_ptr<ReplicatedObject> ba = base.clone();
  const std::vector<std::uint8_t> rb2 = apply_op(*ba, b);
  const std::vector<std::uint8_t> ra2 = apply_op(*ba, a);
  return ab->equals(*ba) && ra1 == ra2 && rb1 == rb2;
}

}  // namespace

std::unique_ptr<ReplicatedObject> SequentialSpec::make() const {
  require(static_cast<bool>(make_), "SequentialSpec: no factory installed");
  std::unique_ptr<ReplicatedObject> obj = make_();
  ensure(obj != nullptr, "SequentialSpec: factory returned null");
  return obj;
}

CommutativitySpec derive_commutativity(const SequentialSpec& spec) {
  require(!spec.probes().empty(),
          "derive_commutativity: spec declares no probe operations");

  // Materialize the probed base states: the initial state plus each
  // declared base prefix.
  std::vector<std::unique_ptr<ReplicatedObject>> bases;
  bases.push_back(spec.make());
  for (const std::vector<Op>& prefix : spec.bases()) {
    std::unique_ptr<ReplicatedObject> obj = spec.make();
    for (const Op& op : prefix) {
      apply_op(*obj, op);
    }
    bases.push_back(std::move(obj));
  }

  // Group probes by kind, and classify kinds as read-like (any probe
  // returned a response from any base) or update-like.
  std::map<std::string, std::vector<const Op*>> by_kind;
  for (const Op& op : spec.probes()) {
    by_kind[op.kind].push_back(&op);
  }
  std::set<std::string> read_like;
  for (const auto& [kind, probes] : by_kind) {
    for (const Op* op : probes) {
      for (const std::unique_ptr<ReplicatedObject>& base : bases) {
        const std::unique_ptr<ReplicatedObject> scratch = base->clone();
        if (!apply_op(*scratch, *op).empty()) {
          read_like.insert(kind);
        }
      }
    }
  }

  // Kind-level commutation: every representative pair, from every base.
  std::map<std::pair<std::string, std::string>, bool> commutes;
  for (const auto& [ka, pa] : by_kind) {
    for (const auto& [kb, pb] : by_kind) {
      if (kb < ka) {
        continue;
      }
      bool ok = true;
      for (const std::unique_ptr<ReplicatedObject>& base : bases) {
        for (const Op* a : pa) {
          for (const Op* b : pb) {
            if (!commute_from(*base, *a, *b)) {
              ok = false;
            }
          }
        }
      }
      commutes[{ka, kb}] = ok;
    }
  }
  const auto kinds_commute = [&](const std::string& a, const std::string& b) {
    return a <= b ? commutes.at({a, b}) : commutes.at({b, a});
  };

  // C-class: start from every self-commuting kind, then greedily shed
  // conflicted kinds until the set is mutually commuting. Read-like kinds
  // go first (reads are the natural sync ops), then by conflict count,
  // then alphabetically last — fully deterministic, so every member
  // derives the identical table.
  std::set<std::string> cclass;
  for (const auto& [kind, probes] : by_kind) {
    if (kinds_commute(kind, kind)) {
      cclass.insert(kind);
    }
  }
  for (;;) {
    std::string worst;
    std::size_t worst_conflicts = 0;
    bool worst_read = false;
    for (const std::string& kind : cclass) {
      std::size_t conflicts = 0;
      for (const std::string& other : cclass) {
        if (!kinds_commute(kind, other)) {
          conflicts += 1;
        }
      }
      if (conflicts == 0) {
        continue;
      }
      const bool is_read = read_like.count(kind) != 0;
      const auto candidate = std::make_tuple(is_read, conflicts, kind);
      const auto current = std::make_tuple(worst_read, worst_conflicts, worst);
      if (worst.empty() || candidate > current) {
        worst = kind;
        worst_conflicts = conflicts;
        worst_read = is_read;
      }
    }
    if (worst.empty()) {
      break;
    }
    cclass.erase(worst);
  }

  CommutativitySpec derived;
  for (const std::string& kind : cclass) {
    derived.mark_commutative(kind);
  }
  // Commuting pairs the C-class does not imply: reads with reads, sync
  // updates with inert markers, identical checkpoint ops, ...
  for (const auto& [pair, ok] : commutes) {
    if (!ok) {
      continue;
    }
    if (cclass.count(pair.first) != 0 && cclass.count(pair.second) != 0) {
      continue;
    }
    derived.mark_commuting_pair(pair.first, pair.second);
  }
  return derived;
}

}  // namespace cbc::object
