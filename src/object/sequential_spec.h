// Sequential specification of a replicated object, and the derivation of
// its commutativity relation from it.
//
// A SequentialSpec describes an object *behaviourally*: how to build a
// fresh instance, plus representative probe operations and base states
// covering the object's intended usage domain. derive_commutativity()
// turns that description into the CommutativitySpec the access protocol
// needs, replacing the hand-labelled bits the apps used to carry: two op
// kinds commute iff, from every probe base state, applying every
// representative argument pair in either order leaves the state equal
// and both responses unchanged.
//
// The probe set IS the domain claim. The card game probes plays with
// distinct (turn, player) keys because the game's rules guarantee one
// play per key; the queue probes enqueues with unique tags because
// producers draw tags from disjoint ranges. Spec-level knowledge of the
// usage domain replaces the paper's per-application reasoning (§5.1) —
// it is declared once, next to the object, and everything downstream
// (front-end managers, stable-point detection, the history checker)
// derives from it.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "activity/commutativity.h"
#include "object/replicated_object.h"

namespace cbc::object {

class SequentialSpec {
 public:
  using Factory = std::function<std::unique_ptr<ReplicatedObject>()>;

  SequentialSpec() = default;
  explicit SequentialSpec(Factory make) : make_(std::move(make)) {}

  /// Registers one representative operation (kind + encoded args). Every
  /// kind needs at least one probe; kinds whose behaviour depends on the
  /// arguments need several (e.g. two upds of the same name AND of
  /// different names, so the same-name conflict is observed).
  void probe(Op op) { probes_.push_back(std::move(op)); }

  /// Registers a base state — ops applied to a fresh object — that probe
  /// pairs are additionally replayed from (the initial state is always
  /// probed). Bases make reads observable: rd on a counter distinguishes
  /// orders only when the ops around it change the value it sees.
  void base(std::vector<Op> ops) { bases_.push_back(std::move(ops)); }

  /// Fresh object in its initial state.
  [[nodiscard]] std::unique_ptr<ReplicatedObject> make() const;

  [[nodiscard]] const std::vector<Op>& probes() const { return probes_; }
  [[nodiscard]] const std::vector<std::vector<Op>>& bases() const {
    return bases_;
  }

 private:
  Factory make_;
  std::vector<Op> probes_;
  std::vector<std::vector<Op>> bases_;
};

/// Derives the operation-commutativity table by probing the sequential
/// spec: pairwise swap tests over all probe args and base states decide
/// which kinds commute; the C-class (kinds the front-end may leave in an
/// open causal activity) is the largest mutually-commuting kind set,
/// shedding response-producing (read-like) kinds first — reads are the
/// natural sync operations, updates the natural C-class. Commuting pairs
/// outside the C-class (reads with reads, updates with inert markers)
/// are kept as explicit pairs.
[[nodiscard]] CommutativitySpec derive_commutativity(
    const SequentialSpec& spec);

}  // namespace cbc::object
