#include "object/catalog.h"

#include <utility>

#include "util/ensure.h"

namespace cbc::object {

Catalog& Catalog::instance() {
  static Catalog catalog;
  return catalog;
}

void Catalog::install(CatalogEntry entry) {
  require(!entry.name.empty(), "Catalog::install: entry needs a name");
  require(static_cast<bool>(entry.make),
          "Catalog::install: entry needs a factory");
  const LockGuard lock(mutex_);
  entries_.insert_or_assign(entry.name, std::move(entry));
}

std::optional<CatalogEntry> Catalog::find(const std::string& name) const {
  const LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::string> Catalog::names() const {
  const LockGuard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

Value Catalog::make_value(const std::string& name) const {
  const std::optional<CatalogEntry> entry = find(name);
  require(entry.has_value(), "Catalog: unknown object type: " + name);
  return Value(entry->make());
}

}  // namespace cbc::object
