#include "object/replicated_object.h"

namespace cbc::object {

Op nop(std::uint64_t tag) {
  Writer writer;
  writer.u64(tag);
  return Op{"nop", writer.take()};
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t ReplicatedObject::state_digest() const {
  Writer writer;
  encode(writer);
  const std::vector<std::uint8_t> bytes = writer.take();
  return fnv1a64(bytes);
}

}  // namespace cbc::object
