// The object catalog: name -> how to build the object, its sequential
// specification, and the round-workload hooks cluster binaries and
// benches use to generate deterministic traffic.
//
// Entries are installed explicitly (apps::install_objects()) rather than
// by static initializers, which the linker is free to drop from static
// libraries. Installation is idempotent — the last entry under a name
// wins — so tests and binaries may both install freely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "object/replicated_object.h"
#include "object/sequential_spec.h"
#include "object/value.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace cbc::object {

struct CatalogEntry {
  std::string name;

  /// Fresh object in its initial state.
  std::function<std::unique_ptr<ReplicatedObject>()> make;

  /// Behavioural spec; derive_commutativity(spec()) is the access
  /// protocol's commutativity table.
  std::function<SequentialSpec()> spec;

  /// One commutative (C-class) workload op for member `node`, round
  /// `round`, slot `k`. Must be deterministic in its arguments so
  /// independent cluster runs agree digest-for-digest.
  std::function<Op(NodeId node, std::uint64_t round, std::uint64_t k)>
      workload_op;

  /// The sync (non-C-class) op closing each round's causal activity.
  /// Checkpoint-enabled runs additionally need it state-inert (a read):
  /// cluster checkpoints are captured at the sync's delivery tap, before
  /// the replica applies it — cbc_node probes and enforces this. Objects
  /// whose C-class IS their reads (the registry: queries commute, updates
  /// close) necessarily use a mutating sync op and skip checkpointing.
  Op sync_op;
};

class Catalog {
 public:
  /// The process-wide catalog.
  static Catalog& instance();

  /// Installs (or replaces) an entry under entry.name.
  void install(CatalogEntry entry);

  /// Looks an entry up; nullopt when the name is unknown.
  [[nodiscard]] std::optional<CatalogEntry> find(
      const std::string& name) const;

  /// Installed names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Fresh Value of a named type; throws InvalidArgument when unknown.
  [[nodiscard]] Value make_value(const std::string& name) const;

 private:
  mutable Mutex mutex_{kRankLeaf, "object catalog"};
  std::map<std::string, CatalogEntry> entries_ CBC_GUARDED_BY(mutex_);
};

}  // namespace cbc::object
