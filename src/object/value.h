// object::Value — a value-semantic handle over any ReplicatedObject.
//
// The replica templates (ReplicaNode<State>, ReplicaGroup<State>, the
// checkpoint and state-transfer paths) require a copyable, comparable,
// serializable State. Value satisfies that contract for an object chosen
// at runtime (cbc_node --object NAME): copying clones the underlying
// object, encode() is self-describing (type name + state), and decode()
// rebuilds through the catalog. A default-constructed Value is empty —
// replicas running over Value must be seeded with an initial object
// (ReplicaNode Options::initial).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "object/replicated_object.h"
#include "util/serde.h"

namespace cbc::object {

class Value {
 public:
  Value() = default;  // empty; seed via Options::initial before use
  explicit Value(std::unique_ptr<ReplicatedObject> object)
      : object_(std::move(object)) {}

  Value(const Value& other)
      : object_(other.object_ != nullptr ? other.object_->clone() : nullptr) {}
  Value& operator=(const Value& other) {
    if (this != &other) {
      object_ = other.object_ != nullptr ? other.object_->clone() : nullptr;
    }
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  ~Value() = default;

  [[nodiscard]] bool has_value() const { return object_ != nullptr; }
  [[nodiscard]] const ReplicatedObject& object() const;
  [[nodiscard]] std::string type_name() const;

  /// Applies one operation; requires a non-empty Value.
  std::vector<std::uint8_t> apply(std::string_view kind, Reader& args);

  /// Two empty Values are equal; an empty and a non-empty one are not.
  bool operator==(const Value& other) const;

  [[nodiscard]] std::string to_string() const;

  /// Self-describing snapshot: type name + object state.
  void encode(Writer& writer) const;

  /// Rebuilds from an encoded snapshot via the catalog; the named type
  /// must be installed (apps::install_objects()).
  static Value decode(Reader& reader);

 private:
  std::unique_ptr<ReplicatedObject> object_;
};

}  // namespace cbc::object
