#include "object/value.h"

#include "object/catalog.h"
#include "util/ensure.h"

namespace cbc::object {

const ReplicatedObject& Value::object() const {
  require(object_ != nullptr, "object::Value: empty value");
  return *object_;
}

std::string Value::type_name() const { return object().type_name(); }

std::vector<std::uint8_t> Value::apply(std::string_view kind, Reader& args) {
  require(object_ != nullptr,
          "object::Value::apply: empty value (seed the replica with "
          "Options::initial)");
  return object_->apply(kind, args);
}

bool Value::operator==(const Value& other) const {
  if (object_ == nullptr || other.object_ == nullptr) {
    return object_ == nullptr && other.object_ == nullptr;
  }
  return object_->equals(*other.object_);
}

std::string Value::to_string() const {
  return object_ != nullptr ? object_->to_string() : "Value{empty}";
}

void Value::encode(Writer& writer) const {
  require(object_ != nullptr, "object::Value::encode: empty value");
  writer.str(object_->type_name());
  object_->encode(writer);
}

Value Value::decode(Reader& reader) {
  const std::string name = reader.str();
  Value value = Catalog::instance().make_value(name);
  value.object_->restore(reader);
  return value;
}

}  // namespace cbc::object
