// Cross-replica consistency oracles.
//
// Test- and operations-facing utilities that check the paper's agreement
// properties over concrete replica groups:
//   - delivery logs are permutations of each other (same message set);
//   - each member's delivery order is an allowed sequence of its R(M);
//   - states agree at corresponding stable points wherever coverage was
//     complete at every member.
// They return a structured verdict naming the first divergence, which the
// test suite and any monitoring harness can surface directly.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "activity/stable_point.h"
#include "causal/osend.h"

namespace cbc {

/// Verdict of a consistency check; empty problem == consistent.
struct ConsistencyVerdict {
  bool consistent = true;
  std::string problem;  ///< human-readable description of the divergence

  static ConsistencyVerdict ok() { return {}; }
  static ConsistencyVerdict fail(std::string why) {
    return ConsistencyVerdict{false, std::move(why)};
  }
};

/// Checks that every member delivered exactly the same message set and
/// that each member's order is valid against its own observed graph.
template <typename MemberRange>
ConsistencyVerdict check_causal_delivery(const MemberRange& members) {
  std::optional<std::vector<MessageId>> reference;
  std::size_t index = 0;
  for (const auto& member_ptr : members) {
    const OSendMember& member = *member_ptr;
    std::vector<MessageId> ids = delivered_ids(member.log());
    if (!member.graph().is_valid_delivery_order(ids)) {
      return ConsistencyVerdict::fail(
          "member " + std::to_string(index) +
          " delivered an order not allowed by its dependency graph");
    }
    std::sort(ids.begin(), ids.end());
    if (!reference.has_value()) {
      reference = std::move(ids);
    } else if (ids != *reference) {
      return ConsistencyVerdict::fail(
          "member " + std::to_string(index) +
          " delivered a different message set than member 0");
    }
    ++index;
  }
  return ConsistencyVerdict::ok();
}

/// Checks stable-point agreement across detectors+snapshots: for every
/// cycle where coverage was complete at ALL members, the snapshots must
/// be equal. `snapshots_of(i)` returns the i-th member's stable_history();
/// `detector_of(i)` its StablePointDetector.
template <typename SnapshotsFn, typename DetectorFn>
ConsistencyVerdict check_stable_points(std::size_t member_count,
                                       SnapshotsFn&& snapshots_of,
                                       DetectorFn&& detector_of) {
  if (member_count == 0) {
    return ConsistencyVerdict::ok();
  }
  const std::size_t cycles = detector_of(0).history().size();
  for (std::size_t i = 1; i < member_count; ++i) {
    if (detector_of(i).history().size() != cycles) {
      return ConsistencyVerdict::fail(
          "member " + std::to_string(i) + " saw " +
          std::to_string(detector_of(i).history().size()) +
          " stable points vs member 0's " + std::to_string(cycles));
    }
  }
  for (std::size_t c = 0; c < cycles; ++c) {
    bool covered_everywhere = true;
    for (std::size_t i = 0; i < member_count; ++i) {
      const StablePoint& point = detector_of(i).history()[c];
      if (point.sync_message != detector_of(0).history()[c].sync_message) {
        return ConsistencyVerdict::fail(
            "cycle " + std::to_string(c) + ": member " + std::to_string(i) +
            " closed on a different sync message than member 0");
      }
      covered_everywhere = covered_everywhere && point.coverage_complete;
    }
    if (!covered_everywhere) {
      continue;  // agreement not promised for uncovered cycles (§5.2)
    }
    for (std::size_t i = 1; i < member_count; ++i) {
      if (!(snapshots_of(i)[c] == snapshots_of(0)[c])) {
        return ConsistencyVerdict::fail(
            "cycle " + std::to_string(c) + ": member " + std::to_string(i) +
            " disagrees with member 0 at a fully covered stable point");
      }
    }
  }
  return ConsistencyVerdict::ok();
}

}  // namespace cbc
