// Stable-point detection from a delivery stream (paper §4.1, §5.1, §6.1).
//
// The §6.1 access protocol structures traffic as repeating causal
// activities:
//
//   rqst_nc(r-1)  →  ||{ rqst_c(r,k) } k=1..f̄  →  rqst_nc(r)
//
// A replica detects the stable point for cycle r *locally*: the moment the
// next non-commutative message is delivered, because causal delivery
// guarantees every commutative message the sync message depends on was
// delivered first. No agreement round is needed — this is the paper's
// central performance claim (bench C3 quantifies it).
//
// The detector also audits *coverage*: the sync message's Occurs_After set
// should include every open commutative message this member has seen.
// When clients race (or dependency knowledge is incomplete, §5.2), a sync
// message may close a cycle without covering everything — agreement at
// that point is then not guaranteed, and the detector flags it so the
// application layer (src/appcons) can compensate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "activity/commutativity.h"
#include "causal/delivery.h"
#include "graph/message_id.h"

namespace cbc {

/// One detected stable point (close of one causal activity).
struct StablePoint {
  std::uint64_t cycle = 0;             ///< 1-based processing-cycle index r
  MessageId sync_message;              ///< the closing non-commutative msg
  std::string sync_label;              ///< its label
  std::vector<MessageId> commutative_set;  ///< ||{rqst_c} of this cycle
  bool coverage_complete = false;      ///< sync deps covered the whole set
  SimTime at = 0;                      ///< delivery time of the sync msg
};

/// Per-member stable-point tracker. Feed it every Delivery (in the local
/// delivery order); it fires the callback at each stable point.
class StablePointDetector {
 public:
  using StablePointFn = std::function<void(const StablePoint&)>;

  /// `spec` classifies operations; `on_stable` may be empty (query-only).
  StablePointDetector(CommutativitySpec spec, StablePointFn on_stable);

  /// Processes one delivered message.
  void on_delivery(const Delivery& delivery);

  /// Index of the cycle currently being accumulated (1-based; cycle 1 is
  /// open before the first sync message closes it).
  [[nodiscard]] std::uint64_t open_cycle() const { return cycle_ + 1; }

  /// Commutative messages delivered since the last stable point.
  [[nodiscard]] const std::vector<MessageId>& open_set() const {
    return open_set_;
  }

  /// All stable points detected so far, in order.
  [[nodiscard]] const std::vector<StablePoint>& history() const {
    return history_;
  }

  /// True when the last delivered message closed a cycle, i.e. the state
  /// right now is a stable point (agreed at all members once their
  /// detectors reach the same message).
  [[nodiscard]] bool at_stable_point() const { return at_stable_point_; }

 private:
  CommutativitySpec spec_;
  StablePointFn on_stable_;
  std::uint64_t cycle_ = 0;            // completed cycles
  std::vector<MessageId> open_set_;    // commutative msgs in the open cycle
  bool at_stable_point_ = true;        // initial state counts as stable
  std::vector<StablePoint> history_;
};

}  // namespace cbc
