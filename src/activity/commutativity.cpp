#include "activity/commutativity.h"

#include <algorithm>

namespace cbc {

CommutativitySpec CommutativitySpec::all_commutative() {
  CommutativitySpec spec;
  spec.commutative_kinds_.insert("*");
  return spec;
}

CommutativitySpec CommutativitySpec::none_commutative() {
  return CommutativitySpec{};
}

void CommutativitySpec::mark_commutative(std::string op) {
  commutative_kinds_.insert(std::move(op));
}

void CommutativitySpec::mark_commuting_pair(std::string a, std::string b) {
  if (b < a) {
    std::swap(a, b);
  }
  pairs_.emplace(std::move(a), std::move(b));
}

bool CommutativitySpec::is_commutative(std::string_view label) const {
  if (commutative_kinds_.count("*") != 0) {
    return true;
  }
  return commutative_kinds_.count(kind_of(label)) != 0;
}

bool CommutativitySpec::commute(std::string_view a, std::string_view b) const {
  if (is_commutative(a) && is_commutative(b)) {
    return true;
  }
  std::string ka = kind_of(a);
  std::string kb = kind_of(b);
  if (kb < ka) {
    std::swap(ka, kb);
  }
  return pairs_.count({ka, kb}) != 0;
}

std::string CommutativitySpec::kind_of(std::string_view label) {
  const std::size_t paren = label.find('(');
  const std::size_t hash = label.find('#');
  const std::size_t cut = std::min(paren, hash);
  if (cut == std::string_view::npos) {
    return std::string(label);
  }
  return std::string(label.substr(0, cut));
}

}  // namespace cbc
