#include "activity/activity_builder.h"

#include "util/ensure.h"

namespace cbc {

DepSpec ActivityBuilder::anchor_dep() const {
  return anchor_.is_null() ? DepSpec::none() : DepSpec::after(anchor_);
}

MessageId ActivityBuilder::open(std::string label,
                                std::vector<std::uint8_t> payload) {
  require(!open_, "ActivityBuilder::open: activity already open");
  const MessageId id =
      member_.broadcast(std::move(label), std::move(payload), anchor_dep());
  anchor_ = id;
  open_ = true;
  concurrent_set_.clear();
  return id;
}

MessageId ActivityBuilder::concurrent(std::string label,
                                      std::vector<std::uint8_t> payload) {
  // Implicitly usable without open(): the previous close anchors the set.
  open_ = true;
  const MessageId id =
      member_.broadcast(std::move(label), std::move(payload), anchor_dep());
  concurrent_set_.push_back(id);
  return id;
}

MessageId ActivityBuilder::close(std::string label,
                                 std::vector<std::uint8_t> payload) {
  // Closing an empty activity is legal: it degenerates to a chained sync
  // message (back-to-back stable points, §4.1).
  DepSpec deps = concurrent_set_.empty() ? anchor_dep()
                                         : DepSpec::after_all(concurrent_set_);
  const MessageId id =
      member_.broadcast(std::move(label), std::move(payload), deps);
  anchor_ = id;
  concurrent_set_.clear();
  open_ = false;
  ++completed_;
  return id;
}

}  // namespace cbc
