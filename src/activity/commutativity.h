// Commutativity classification of application operations (paper §5.1, §6).
//
// The paper's access protocols hinge on splitting operations into
// *commutative* ones (inc/dec on a counter, annotations on disjoint items)
// whose processing order may be relaxed, and *non-commutative* ones (read,
// a conflicting write) that close a causal activity and form stable
// points. A CommutativitySpec carries that application knowledge in a
// declarative form the front-end managers and replicas can share — "the
// knowledge of how the various operations affect the data ... embedded
// into the data access protocol" (§6).
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace cbc {

/// Declarative operation-commutativity table keyed by operation label
/// prefix (the part of a label before '(' — so "inc(x)" matches "inc").
class CommutativitySpec {
 public:
  /// Every operation commutes (degenerate; useful in tests).
  static CommutativitySpec all_commutative();

  /// No operation commutes — forces per-message stable points, the
  /// behaviour of a totally-ordered baseline.
  static CommutativitySpec none_commutative();

  /// Marks an operation kind commutative: it commutes with every other
  /// commutative kind *on the same data item* and with itself.
  void mark_commutative(std::string op);

  /// Marks an explicit commuting pair (order-insensitive), overriding the
  /// default for two kinds that are not both blanket-commutative
  /// (e.g. reads commute with reads even though reads are sync ops).
  void mark_commuting_pair(std::string a, std::string b);

  /// True when `op` is a commutative kind (C-class in §6.1's cycle).
  [[nodiscard]] bool is_commutative(std::string_view label) const;

  /// True when operations with these labels may be processed in either
  /// order: both blanket-commutative, or an explicitly marked pair.
  [[nodiscard]] bool commute(std::string_view a, std::string_view b) const;

  /// Extracts the operation kind from a label: "inc(x)#4" -> "inc".
  [[nodiscard]] static std::string kind_of(std::string_view label);

 private:
  std::set<std::string> commutative_kinds_;
  std::set<std::pair<std::string, std::string>> pairs_;  // sorted pairs
};

}  // namespace cbc
