// Fluent construction of causal activities (paper §3.2, §4.1).
//
// The paper's recurring pattern is the activity
//     m_o  ->  ||{m_i} i=1..r  ->  m_{r+1}
// — an opening message, a set of mutually concurrent messages, and a
// closing synchronization message whose AND-dependency covers the set.
// ActivityBuilder emits exactly that shape over any BroadcastMember,
// chaining
// activities so each close anchors the next open ("a causal activity may
// be serializable with respect to other activities, so the stable point
// is the initial state for the next activity").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causal/delivery.h"
#include "graph/dep_spec.h"

namespace cbc {

/// Builder emitting one causal activity at a time over a member.
class ActivityBuilder {
 public:
  /// `member` must outlive the builder.
  explicit ActivityBuilder(BroadcastMember& member) : member_(member) {}

  /// Opens an activity with message m_o, ordered after the previous
  /// activity's close (or unconstrained for the first). Error when an
  /// activity is already open.
  MessageId open(std::string label, std::vector<std::uint8_t> payload = {});

  /// Adds one concurrent member m_i: Occurs_After(m_o) only, so all
  /// concurrent() messages of the activity are pairwise ||. May also be
  /// called without open() — the previous close then acts as the anchor.
  MessageId concurrent(std::string label,
                       std::vector<std::uint8_t> payload = {});

  /// Closes the activity: the message's AND-set covers every concurrent
  /// message (or the anchor when none were sent). Its delivery is the
  /// activity's stable point at every member.
  MessageId close(std::string label, std::vector<std::uint8_t> payload = {});

  /// Number of activities closed so far.
  [[nodiscard]] std::uint64_t activities_completed() const {
    return completed_;
  }

  /// True between open()/concurrent() and close().
  [[nodiscard]] bool activity_open() const { return open_; }

  /// The concurrent set accumulated in the open activity.
  [[nodiscard]] const std::vector<MessageId>& current_set() const {
    return concurrent_set_;
  }

 private:
  [[nodiscard]] DepSpec anchor_dep() const;

  BroadcastMember& member_;
  MessageId anchor_ = MessageId::null();  // previous close (or open)
  std::vector<MessageId> concurrent_set_;
  bool open_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace cbc
