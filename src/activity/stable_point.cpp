#include "activity/stable_point.h"

#include <algorithm>

namespace cbc {

StablePointDetector::StablePointDetector(CommutativitySpec spec,
                                         StablePointFn on_stable)
    : spec_(std::move(spec)), on_stable_(std::move(on_stable)) {}

void StablePointDetector::on_delivery(const Delivery& delivery) {
  if (spec_.is_commutative(delivery.label())) {
    open_set_.push_back(delivery.id);
    at_stable_point_ = false;
    return;
  }
  // Non-commutative: closes the open cycle and forms a stable point.
  StablePoint point;
  point.cycle = ++cycle_;
  point.sync_message = delivery.id;
  point.sync_label = delivery.label();
  point.commutative_set = open_set_;
  point.at = delivery.delivered_at;
  point.coverage_complete =
      std::all_of(open_set_.begin(), open_set_.end(),
                  [&delivery](const MessageId& open_id) {
                    return delivery.deps().depends_on(open_id);
                  });
  open_set_.clear();
  at_stable_point_ = true;
  history_.push_back(point);
  if (on_stable_) {
    on_stable_(history_.back());
  }
}

}  // namespace cbc
