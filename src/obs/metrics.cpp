#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "util/ensure.h"

namespace cbc::obs {

void Gauge::record_max(std::int64_t value) {
  std::int64_t current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  require(!bounds_.empty(), "LatencyHistogram: no buckets");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "LatencyHistogram: bounds must be strictly increasing");
}

std::vector<double> LatencyHistogram::default_bounds() {
  // 1-2-5 decades from 1us to 5s; 22 buckets plus +inf.
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    if (decade <= 1e5) {
      bounds.push_back(5.0 * decade);
    }
  }
  return bounds;
}

void LatencyHistogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value <= 0.0 ? 0
                              : static_cast<std::uint64_t>(std::llround(value)),
                 std::memory_order_relaxed);
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double LatencyHistogram::percentile_estimate(double q) const {
  require(q >= 0.0 && q <= 100.0, "percentile q must be in [0,100]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t bucket : counts) {
    total += bucket;
  }
  if (total == 0) {
    return 0.0;
  }
  const double target = q / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t previous = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) {
      continue;
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    // The +inf bucket has no upper edge; report its lower edge.
    const double upper = i < bounds_.size() ? bounds_[i] : lower;
    if (counts[i] == 0) {
      return upper;
    }
    const double within =
        (target - static_cast<double>(previous)) /
        static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return bounds_.back();
}

void CollectorSink::counter(const std::string& name, std::uint64_t value) {
  values_.emplace_back(name, static_cast<double>(value), true);
}

void CollectorSink::gauge(const std::string& name, double value) {
  values_.emplace_back(name, value, false);
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void CollectorHandle::reset() {
  if (registry_ != nullptr) {
    registry_->unregister_collector(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const LockGuard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const LockGuard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             std::vector<double> bounds) {
  const LockGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>(
        bounds.empty() ? LatencyHistogram::default_bounds()
                       : std::move(bounds));
  }
  return *slot;
}

CollectorHandle MetricsRegistry::register_collector(CollectFn fn) {
  require(static_cast<bool>(fn), "register_collector: empty callback");
  const LockGuard lock(mutex_);
  const std::size_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return {this, id};
}

void MetricsRegistry::unregister_collector(std::size_t id) {
  const LockGuard lock(mutex_);
  std::erase_if(collectors_,
                [id](const auto& entry) { return entry.first == id; });
}

namespace {

/// Runs every collector outside any particular metric's hot path; the
/// registry lock is held, so collectors must not call back into the
/// registry (they only read their component and emit into the sink).
void run_collectors(
    const std::vector<std::pair<std::size_t, MetricsRegistry::CollectFn>>&
        collectors,
    CollectorSink& sink) {
  for (const auto& [id, fn] : collectors) {
    fn(sink);
  }
}

}  // namespace

std::map<std::string, double> MetricsRegistry::snapshot() const {
  const LockGuard lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = static_cast<double>(counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out[name] = static_cast<double>(gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out[name + ".count"] = static_cast<double>(histogram->count());
    out[name + ".sum"] = static_cast<double>(histogram->sum());
    out[name + ".p50"] = histogram->percentile_estimate(50);
    out[name + ".p90"] = histogram->percentile_estimate(90);
    out[name + ".p99"] = histogram->percentile_estimate(99);
  }
  CollectorSink sink;
  run_collectors(collectors_, sink);
  for (const auto& [name, value, is_counter] : sink.values_) {
    // Same-name emissions (several components sharing a prefix) sum into
    // one series — a group-wide aggregate rather than last-writer-wins.
    out[name] += value;
  }
  return out;
}

void MetricsRegistry::set_default_labels(
    std::vector<std::pair<std::string, std::string>> labels) {
  const LockGuard lock(mutex_);
  default_labels_ = std::move(labels);
}

namespace {

/// Escapes a label value per the text exposition format.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Renders the default labels as `k="v",k2="v2"` (no braces), ready to
/// stand alone or to follow a histogram's `le` label.
std::string render_label_body(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) {
      out.push_back(',');
    }
    out += key + "=\"" + escape_label_value(value) + "\"";
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  const LockGuard lock(mutex_);
  const std::string label_body = render_label_body(default_labels_);
  // Suffix for non-bucket series: `{k="v"}` or nothing.
  const std::string plain =
      label_body.empty() ? std::string() : "{" + label_body + "}";
  // Infix for bucket series, merged after the `le` label.
  const std::string bucket_extra =
      label_body.empty() ? std::string() : "," + label_body;
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " counter\n"
        << prom << plain << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << plain << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " histogram\n";
    const std::vector<std::uint64_t> counts = histogram->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram->bounds().size(); ++i) {
      cumulative += counts[i];
      out << prom << "_bucket{le=\"" << histogram->bounds()[i] << "\""
          << bucket_extra << "} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"" << bucket_extra << "} "
        << histogram->count() << "\n"
        << prom << "_sum" << plain << " " << histogram->sum() << "\n"
        << prom << "_count" << plain << " " << histogram->count() << "\n";
    // Bucket-resolution percentile gauges: dashboards and cbc_top read
    // quantiles without re-deriving them from the cumulative buckets.
    for (const double q : {50.0, 90.0, 99.0}) {
      const std::string suffix = "_p" + std::to_string(static_cast<int>(q));
      out << "# TYPE " << prom << suffix << " gauge\n"
          << prom << suffix << plain << " "
          << histogram->percentile_estimate(q) << "\n";
    }
  }
  CollectorSink sink;
  run_collectors(collectors_, sink);
  // Aggregate same-name emissions before rendering: duplicate series on
  // one exposition page are invalid Prometheus text format.
  std::map<std::string, std::pair<double, bool>> aggregated;
  for (const auto& [name, value, is_counter] : sink.values_) {
    auto& slot = aggregated[name];
    slot.first += value;
    slot.second = is_counter;
  }
  for (const auto& [name, slot] : aggregated) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " " << (slot.second ? "counter" : "gauge")
        << "\n"
        << prom << plain << " " << slot.first << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "cbc_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace cbc::obs
