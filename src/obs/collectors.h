// Scrape-time adapters migrating pre-registry stats structs onto the
// MetricsRegistry without breaking their stats() accessors.
//
// Components that accept obs::Hooks self-register equivalent collectors
// in their constructors; this free function covers everything else — a
// member that predates the registry (vc_causal, sequencer, baselines)
// can be adopted from the outside with one call. The collector reads the
// member's counters under its own lock at scrape time, so the hot path
// stays untouched.
//
// Header-only so cbc_obs stays a leaf library.
#pragma once

#include <string>

#include "causal/delivery.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace cbc::obs {

/// Exposes OrderingStats of any BroadcastMember as counters/gauges named
/// `<prefix>.broadcasts`, `.received`, `.delivered`, `.held_back`,
/// `.max_holdback_depth`, `.duplicates`, `.malformed`. The member must
/// outlive the returned handle.
[[nodiscard]] inline CollectorHandle attach_member_stats(
    MetricsRegistry& registry, std::string prefix, BroadcastMember& member) {
  return registry.register_collector(
      [prefix = std::move(prefix), &member](CollectorSink& sink) {
        const LockGuard lock(member.stack_mutex());
        const OrderingStats& stats = member.stats();
        sink.counter(prefix + ".broadcasts", stats.broadcasts);
        sink.counter(prefix + ".received", stats.received);
        sink.counter(prefix + ".delivered", stats.delivered);
        sink.counter(prefix + ".held_back", stats.held_back);
        sink.gauge(prefix + ".max_holdback_depth",
                   static_cast<double>(stats.max_holdback_depth));
        sink.counter(prefix + ".duplicates", stats.duplicates);
        sink.counter(prefix + ".malformed", stats.malformed);
      });
}

}  // namespace cbc::obs
