// cbc_trace_merge: stitch per-node Chrome trace files into one timeline.
//
//   cbc_trace_merge -o merged.json node0.trace.json node1.trace.json ...
//
// Validates every input, merges by wall-clock timestamp, and prints a
// one-line summary (event/deliver/flow counts) to stderr. Exit 1 on any
// malformed input; exit 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json_lite.h"
#include "obs/trace_merge.h"

namespace {

int usage() {
  std::cerr << "usage: cbc_trace_merge -o <merged.json> <trace.json>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        return usage();
      }
      output = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (output.empty() || inputs.empty()) {
    return usage();
  }
  try {
    const std::string merged = cbc::obs::merge_trace_files(inputs);
    std::ofstream out(output, std::ios::trunc);
    if (!out) {
      std::cerr << "cbc_trace_merge: cannot write " << output << "\n";
      return 1;
    }
    out << merged;
    out.close();
    const cbc::obs::TraceSummary summary =
        cbc::obs::summarize_chrome_trace(cbc::obs::parse_chrome_trace(merged));
    std::cerr << "cbc_trace_merge: " << inputs.size() << " inputs, "
              << summary.events << " events, ";
    std::size_t delivers = 0;
    for (const auto& [pid, count] : summary.deliver_events) {
      delivers += count;
    }
    std::cerr << delivers << " deliver spans across "
              << summary.deliver_events.size() << " processes, "
              << summary.occurs_after_flows << " Occurs_After flows\n";
  } catch (const std::exception& e) {
    std::cerr << "cbc_trace_merge: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
