// cbc_trace_merge: stitch per-node Chrome trace files into one timeline.
//
//   cbc_trace_merge -o merged.json node0.trace.json node1.trace.json ...
//   cbc_trace_merge --align -o merged.json ...      # clock-corrected
//   cbc_trace_merge --report [-o merged.json] ...   # latency breakdown
//   cbc_trace_merge --report-json report.json ...
//
// --align shifts every process's timestamps by the pairwise clock
// offsets the reliable endpoints estimated (clock_offset instants), so
// cross-node arrows point forward even when machine clocks disagree.
// --report prints the end-to-end latency decomposition (encode / wire /
// causal hold / deliver / kv context wait, percentiles per component,
// per-peer hold and per-process kv wait) computed from the same inputs;
// --report-json writes it as one JSON object for CI gates.
//
// Validates every input, merges by wall-clock timestamp, and prints a
// one-line summary (event/deliver/flow counts) to stderr. Exit 1 on any
// malformed input; exit 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json_lite.h"
#include "obs/trace_merge.h"

namespace {

int usage() {
  std::cerr << "usage: cbc_trace_merge [--align] [--report] "
               "[--report-json <report.json>]\n"
               "                       [-o <merged.json>] <trace.json>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string report_json_path;
  bool align = false;
  bool report_text = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        return usage();
      }
      output = argv[++i];
    } else if (arg == "--align") {
      align = true;
    } else if (arg == "--report") {
      report_text = true;
    } else if (arg == "--report-json") {
      if (i + 1 >= argc) {
        return usage();
      }
      report_json_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  const bool wants_report = report_text || !report_json_path.empty();
  if (inputs.empty() || (output.empty() && !wants_report)) {
    return usage();
  }
  try {
    const std::vector<cbc::obs::JsonValue> docs =
        cbc::obs::load_trace_files(inputs);
    if (!output.empty()) {
      const std::string merged =
          cbc::obs::merge_trace_docs(docs, {.align = align});
      std::ofstream out(output, std::ios::trunc);
      if (!out) {
        std::cerr << "cbc_trace_merge: cannot write " << output << "\n";
        return 1;
      }
      out << merged;
      out.close();
      const cbc::obs::TraceSummary summary = cbc::obs::summarize_chrome_trace(
          cbc::obs::parse_chrome_trace(merged));
      std::cerr << "cbc_trace_merge: " << inputs.size() << " inputs, "
                << summary.events << " events, ";
      std::size_t delivers = 0;
      for (const auto& [pid, count] : summary.deliver_events) {
        delivers += count;
      }
      std::cerr << delivers << " deliver spans across "
                << summary.deliver_events.size() << " processes, "
                << summary.occurs_after_flows << " Occurs_After flows\n";
    }
    if (wants_report) {
      const cbc::obs::LatencyReport report = cbc::obs::latency_report(docs);
      if (report_text) {
        std::cout << cbc::obs::render_latency_report(report);
      }
      if (!report_json_path.empty()) {
        std::ofstream out(report_json_path, std::ios::trunc);
        if (!out) {
          std::cerr << "cbc_trace_merge: cannot write " << report_json_path
                    << "\n";
          return 1;
        }
        out << cbc::obs::latency_report_json(report) << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "cbc_trace_merge: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
