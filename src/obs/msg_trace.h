// Shared per-envelope trace emission for ordering disciplines.
//
// The trace context IS the MessageId — globally unique, carried in the
// envelope header end to end — so "propagating" it through encode →
// batch → (re)transmit → wire → hold → deliver costs no wire bytes and
// no new plumbing. These helpers emit the canonical span set:
//
//   submit   instant + `msg` flow start (sender process);
//   deliver  complete event whose duration is the causal hold time,
//            ending the `msg` flow (cross-process arrow from the
//            submitter) and drawing one `Occurs_After` flow edge per
//            declared dependency from the dependency's own local
//            deliver (causal delivery guarantees it happened first).
//
// Dedup falls out of the discipline: OSend/ASend call trace_deliver
// exactly once per message id (duplicates are dropped before it), so a
// retransmitted frame can never mint a second deliver span.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/message_id.h"
#include "obs/hooks.h"
#include "obs/trace.h"

namespace cbc::obs {

[[nodiscard]] inline std::string msg_args(const MessageId& id,
                                          const std::string& label) {
  return "\"msg\":\"" + id.to_string() + "\",\"label\":\"" +
         json_escape(label) + "\"";
}

/// Call at broadcast submit, after the id is assigned.
inline void trace_submit(const Hooks& hooks, const MessageId& id,
                         const std::string& label) {
  if (!tracing(hooks)) {
    return;
  }
  const std::int64_t now = Tracer::wall_now_us();
  hooks.tracer->instant("submit", "msg", now, msg_args(id, label));
  hooks.tracer->flow_start("msg", "msg", flow_id(id), now);
}

/// Call exactly once per delivered message, after duplicate suppression.
/// `hold_us` is how long the message waited in the hold-back queue
/// (0 when it was deliverable on arrival).
inline void trace_deliver(const Hooks& hooks, const MessageId& id,
                          const std::string& label,
                          const std::vector<MessageId>& deps,
                          std::int64_t hold_us) {
  if (!tracing(hooks)) {
    return;
  }
  Tracer& tracer = *hooks.tracer;
  const std::int64_t now = Tracer::wall_now_us();
  const std::int64_t held = std::max<std::int64_t>(hold_us, 0);
  const std::int64_t start = now - held;
  tracer.complete("deliver", "msg", start, held,
                  msg_args(id, label) + ",\"hold_us\":" + std::to_string(held));
  tracer.flow_end("msg", "msg", flow_id(id), start);
  for (const MessageId& dep : deps) {
    // A dependency delivered before tracing started (or pruned as
    // stable) has no recorded timestamp; skip its edge.
    const auto dep_ts = tracer.deliver_ts(dep);
    if (!dep_ts.has_value()) {
      continue;
    }
    const std::uint64_t edge = edge_flow_id(dep, id);
    tracer.flow_start("Occurs_After", "occurs_after", edge, *dep_ts);
    tracer.flow_end("Occurs_After", "occurs_after", edge, now);
  }
  tracer.note_deliver(id, now);
}

}  // namespace cbc::obs
