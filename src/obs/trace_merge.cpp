#include "obs/trace_merge.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "util/ensure.h"

namespace cbc::obs {

namespace {

const JsonArray& trace_events(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  require(events != nullptr && events->is_array(),
          "chrome trace: missing traceEvents array");
  return events->as_array();
}

/// Numeric member of the event's `args` object; fallback when absent.
double arg_number(const JsonValue& event, const std::string& key,
                  double fallback) {
  const JsonValue* args = event.find("args");
  if (args == nullptr || !args->is_object()) {
    return fallback;
  }
  const JsonValue* value = args->find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

/// String member of the event's `args` object ("" when absent).
std::string arg_string(const JsonValue& event, const std::string& key) {
  const JsonValue* args = event.find("args");
  if (args == nullptr || !args->is_object()) {
    return {};
  }
  const JsonValue* value = args->find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

/// Sender encoded in a MessageId string ("s3:17" -> 3; nullopt on
/// anything else).
std::optional<std::uint32_t> msg_sender(const std::string& msg) {
  if (msg.size() < 2 || msg[0] != 's') {
    return std::nullopt;
  }
  std::uint32_t sender = 0;
  std::size_t i = 1;
  for (; i < msg.size() && msg[i] >= '0' && msg[i] <= '9'; ++i) {
    sender = sender * 10 + static_cast<std::uint32_t>(msg[i] - '0');
  }
  if (i == 1 || i >= msg.size() || msg[i] != ':') {
    return std::nullopt;
  }
  return sender;
}

/// Exact sample-level percentiles (nearest-rank with midpoint rounding).
LatencyStat make_stat(std::vector<double> values) {
  LatencyStat stat;
  stat.count = values.size();
  if (values.empty()) {
    return stat;
  }
  std::sort(values.begin(), values.end());
  const auto at = [&values](double q) {
    const double pos =
        q / 100.0 * static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(pos + 0.5)];
  };
  stat.p50 = at(50);
  stat.p90 = at(90);
  stat.p99 = at(99);
  return stat;
}

}  // namespace

JsonValue parse_chrome_trace(const std::string& text) {
  JsonValue doc = json_parse(text);
  for (const JsonValue& event : trace_events(doc)) {
    require(event.is_object(), "chrome trace: event is not an object");
    const JsonValue* ph = event.find("ph");
    require(ph != nullptr && ph->is_string() && ph->as_string().size() == 1,
            "chrome trace: event missing ph");
    const JsonValue* name = event.find("name");
    require(name != nullptr && name->is_string(),
            "chrome trace: event missing name");
    const JsonValue* ts = event.find("ts");
    require(ts != nullptr && ts->is_number(),
            "chrome trace: event missing ts");
    const JsonValue* pid = event.find("pid");
    require(pid != nullptr && pid->is_number(),
            "chrome trace: event missing pid");
  }
  return doc;
}

TraceSummary summarize_chrome_trace(const JsonValue& doc) {
  TraceSummary summary;
  // cat+id pairs seen for flow starts / ends.
  std::multiset<std::string> starts;
  std::multiset<std::string> ends;
  for (const JsonValue& event : trace_events(doc)) {
    summary.events += 1;
    const std::string& ph = event.find("ph")->as_string();
    const std::string& name = event.find("name")->as_string();
    const auto pid =
        static_cast<std::uint32_t>(event.find("pid")->as_number());
    if (ph == "X" && name == "deliver") {
      summary.deliver_events[pid] += 1;
    }
    if (ph == "s" || ph == "f") {
      const JsonValue* cat = event.find("cat");
      const JsonValue* id = event.find("id");
      require(cat != nullptr && cat->is_string() && id != nullptr &&
                  id->is_string(),
              "chrome trace: flow event missing cat/id");
      const std::string key = cat->as_string() + "#" + id->as_string();
      (ph == "s" ? starts : ends).insert(key);
    }
  }
  for (const std::string& key : starts) {
    const auto it = ends.find(key);
    if (it != ends.end()) {
      if (key.rfind("occurs_after#", 0) == 0) {
        summary.occurs_after_flows += 1;
      } else {
        summary.message_flows += 1;
      }
      ends.erase(it);
    } else {
      summary.unmatched_flows += 1;
    }
  }
  summary.unmatched_flows += ends.size();
  return summary;
}

std::vector<JsonValue> load_trace_files(
    const std::vector<std::string>& paths) {
  require(!paths.empty(), "load_trace_files: no inputs");
  std::vector<JsonValue> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    require(static_cast<bool>(in), "load_trace_files: cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      docs.push_back(parse_chrome_trace(buffer.str()));
    } catch (const std::exception& e) {
      require(false, "load_trace_files: " + path + ": " + e.what());
    }
  }
  return docs;
}

std::map<std::uint32_t, double> clock_corrections(
    const std::vector<JsonValue>& docs) {
  // Latest offset sample per directed pair a -> peer b, where offset is
  // (b's clock − a's clock) as estimated by a.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<double, double>>
      latest;  // (a, b) -> (ts, offset_us)
  std::set<std::uint32_t> pids;
  for (const JsonValue& doc : docs) {
    for (const JsonValue& event : trace_events(doc)) {
      if (event.find("ph")->as_string() == "M") {
        continue;
      }
      const auto pid =
          static_cast<std::uint32_t>(event.find("pid")->as_number());
      pids.insert(pid);
      const JsonValue* cat = event.find("cat");
      if (event.find("name")->as_string() != "clock_offset" ||
          cat == nullptr || !cat->is_string() ||
          cat->as_string() != "clock") {
        continue;
      }
      const double peer = arg_number(event, "peer", -1.0);
      if (peer < 0) {
        continue;
      }
      const double ts = event.find("ts")->as_number();
      auto& slot = latest[{pid, static_cast<std::uint32_t>(peer)}];
      if (slot.first <= ts) {
        slot = {ts, arg_number(event, "offset_us", 0.0)};
      }
    }
  }
  // Undirected adjacency: correction(b) = correction(a) − offset(a→b).
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, double>>>
      edges;
  for (const auto& [pair, sample] : latest) {
    edges[pair.first].emplace_back(pair.second, -sample.second);
    edges[pair.second].emplace_back(pair.first, sample.second);
  }
  std::map<std::uint32_t, double> corrections;
  for (const std::uint32_t pid : pids) {
    corrections[pid] = 0.0;
  }
  std::set<std::uint32_t> visited;
  for (const auto& [root, unused] : edges) {
    if (visited.count(root) != 0) {
      continue;
    }
    // Component anchor: its lowest pid stays at correction 0 (edges is an
    // ordered map, so the first unvisited node IS the component minimum
    // reachable this way; good enough — corrections are relative).
    std::vector<std::uint32_t> frontier{root};
    visited.insert(root);
    corrections[root] = 0.0;
    while (!frontier.empty()) {
      const std::uint32_t a = frontier.back();
      frontier.pop_back();
      for (const auto& [b, delta] : edges[a]) {
        if (visited.count(b) != 0) {
          continue;
        }
        visited.insert(b);
        corrections[b] = corrections[a] + delta;
        frontier.push_back(b);
      }
    }
  }
  return corrections;
}

std::string merge_trace_docs(const std::vector<JsonValue>& docs,
                             const MergeOptions& options) {
  std::map<std::uint32_t, double> corrections;
  if (options.align) {
    corrections = clock_corrections(docs);
  }
  struct Entry {
    double ts;
    int order;  // metadata first, then input order for equal timestamps
    std::string json;
  };
  std::vector<Entry> entries;
  int order = 0;
  for (const JsonValue& doc : docs) {
    for (const JsonValue& event : trace_events(doc)) {
      const bool metadata = event.find("ph")->as_string() == "M";
      double ts = metadata ? -1.0 : event.find("ts")->as_number();
      std::string json;
      if (options.align && !metadata) {
        const auto pid =
            static_cast<std::uint32_t>(event.find("pid")->as_number());
        const auto corr = corrections.find(pid);
        if (corr != corrections.end() && corr->second != 0.0) {
          ts += corr->second;
          JsonObject shifted = event.as_object();
          shifted["ts"] = JsonValue(ts);
          json = JsonValue(std::move(shifted)).dump();
        }
      }
      if (json.empty()) {
        json = event.dump();
      }
      entries.push_back(Entry{.ts = ts, .order = order++,
                              .json = std::move(json)});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.ts != b.ts) {
                       return a.ts < b.ts;
                     }
                     return a.order < b.order;
                   });
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i].json;
    if (i + 1 < entries.size()) {
      out << ",";
    }
    out << "\n";
  }
  out << "]}\n";
  return out.str();
}

std::string merge_trace_files(const std::vector<std::string>& paths,
                              const MergeOptions& options) {
  return merge_trace_docs(load_trace_files(paths), options);
}

LatencyReport latency_report(const std::vector<JsonValue>& docs) {
  const std::map<std::uint32_t, double> corrections = clock_corrections(docs);
  const auto corrected = [&corrections](std::uint32_t pid, double ts) {
    const auto it = corrections.find(pid);
    return it == corrections.end() ? ts : ts + it->second;
  };

  // Pass 1: index per-message anchor timestamps.
  struct MsgAnchors {
    bool has_submit = false;
    std::uint32_t submit_pid = 0;
    double submit_ts = 0.0;  // clock-corrected
    double encode_ts = 0.0;  // raw (same-pid delta as submit)
    double submit_raw_ts = 0.0;
    bool has_encode = false;
    /// wire_tx per destination peer (arg of the flight record).
    std::map<std::uint32_t, double> tx_ts;  // corrected
  };
  std::map<std::string, MsgAnchors> anchors;
  for (const JsonValue& doc : docs) {
    for (const JsonValue& event : trace_events(doc)) {
      if (event.find("ph")->as_string() == "M") {
        continue;
      }
      const std::string& name = event.find("name")->as_string();
      if (name != "submit" && name != "encode" && name != "wire_tx") {
        continue;
      }
      const std::string msg = arg_string(event, "msg");
      if (msg.empty()) {
        continue;
      }
      const auto pid =
          static_cast<std::uint32_t>(event.find("pid")->as_number());
      const double ts = event.find("ts")->as_number();
      MsgAnchors& anchor = anchors[msg];
      if (name == "submit" && !anchor.has_submit) {
        anchor.has_submit = true;
        anchor.submit_pid = pid;
        anchor.submit_raw_ts = ts;
        anchor.submit_ts = corrected(pid, ts);
      } else if (name == "encode" && !anchor.has_encode) {
        anchor.has_encode = true;
        anchor.encode_ts = ts;
      } else if (name == "wire_tx") {
        const double peer = arg_number(event, "arg", -1.0);
        if (peer >= 0) {
          anchor.tx_ts.emplace(static_cast<std::uint32_t>(peer),
                               corrected(pid, ts));
        }
      }
    }
  }

  // Pass 2: component samples.
  std::vector<double> encode_samples;
  std::vector<double> wire_samples;
  std::vector<double> hold_samples;
  std::vector<double> deliver_samples;
  std::vector<double> kv_samples;
  std::map<std::uint32_t, std::vector<double>> hold_by_sender;
  std::map<std::uint32_t, std::vector<double>> kv_by_pid;
  std::set<std::string> seen_delivers;  // msg#pid — live + flight dedup
  for (const auto& [msg, anchor] : anchors) {
    if (anchor.has_submit && anchor.has_encode) {
      encode_samples.push_back(
          std::max(0.0, anchor.encode_ts - anchor.submit_raw_ts));
    }
  }
  for (const JsonValue& doc : docs) {
    for (const JsonValue& event : trace_events(doc)) {
      if (event.find("ph")->as_string() == "M") {
        continue;
      }
      const std::string& name = event.find("name")->as_string();
      const auto pid =
          static_cast<std::uint32_t>(event.find("pid")->as_number());
      const double ts = event.find("ts")->as_number();
      if (name == "wire_rx") {
        const std::string msg = arg_string(event, "msg");
        const auto anchor = anchors.find(msg);
        if (anchor == anchors.end()) {
          continue;
        }
        const auto tx = anchor->second.tx_ts.find(pid);
        if (tx != anchor->second.tx_ts.end()) {
          wire_samples.push_back(
              std::max(0.0, corrected(pid, ts) - tx->second));
        }
        continue;
      }
      if (name == "deliver" && event.find("ph")->as_string() == "X") {
        const std::string msg = arg_string(event, "msg");
        if (msg.empty() ||
            !seen_delivers.insert(msg + "#" + std::to_string(pid)).second) {
          continue;  // the live tracer and the flight ring both saw it
        }
        const JsonValue* dur = event.find("dur");
        const double held =
            dur != nullptr && dur->is_number()
                ? dur->as_number()
                : arg_number(event, "hold_us",
                             arg_number(event, "arg", 0.0));
        hold_samples.push_back(held);
        const std::optional<std::uint32_t> sender = msg_sender(msg);
        if (sender.has_value()) {
          hold_by_sender[*sender].push_back(held);
        }
        const auto anchor = anchors.find(msg);
        if (anchor != anchors.end() && anchor->second.has_submit) {
          // Span end = delivery moment (ts is the span start, backdated
          // by the hold time).
          deliver_samples.push_back(std::max(
              0.0, corrected(pid, ts + held) - anchor->second.submit_ts));
        }
        continue;
      }
      if (name == "kv_drain") {
        const double waited = arg_number(event, "arg", 0.0);
        kv_samples.push_back(waited);
        kv_by_pid[pid].push_back(waited);
      }
    }
  }

  LatencyReport report;
  report.encode = make_stat(std::move(encode_samples));
  report.wire = make_stat(std::move(wire_samples));
  report.hold = make_stat(std::move(hold_samples));
  report.deliver = make_stat(std::move(deliver_samples));
  report.kv_wait = make_stat(std::move(kv_samples));
  for (auto& [sender, samples] : hold_by_sender) {
    report.hold_by_sender[sender] = make_stat(std::move(samples));
  }
  for (auto& [pid, samples] : kv_by_pid) {
    report.kv_wait_by_pid[pid] = make_stat(std::move(samples));
  }
  return report;
}

namespace {

void render_stat_line(std::ostringstream& out, const std::string& label,
                      const LatencyStat& stat) {
  out << "  " << label << ": n=" << stat.count;
  if (stat.count > 0) {
    out << " p50=" << stat.p50 << "us p90=" << stat.p90 << "us p99="
        << stat.p99 << "us";
  }
  out << "\n";
}

JsonValue stat_json(const LatencyStat& stat) {
  JsonObject object;
  object.emplace("count", JsonValue(static_cast<double>(stat.count)));
  object.emplace("p50", JsonValue(stat.p50));
  object.emplace("p90", JsonValue(stat.p90));
  object.emplace("p99", JsonValue(stat.p99));
  return JsonValue(std::move(object));
}

}  // namespace

std::string render_latency_report(const LatencyReport& report) {
  std::ostringstream out;
  out << "latency decomposition (micros):\n";
  render_stat_line(out, "encode      ", report.encode);
  render_stat_line(out, "wire        ", report.wire);
  render_stat_line(out, "causal hold ", report.hold);
  render_stat_line(out, "deliver e2e ", report.deliver);
  render_stat_line(out, "kv ctx wait ", report.kv_wait);
  for (const auto& [sender, stat] : report.hold_by_sender) {
    render_stat_line(out, "hold from s" + std::to_string(sender), stat);
  }
  for (const auto& [pid, stat] : report.kv_wait_by_pid) {
    render_stat_line(out, "kv wait pid " + std::to_string(pid), stat);
  }
  return out.str();
}

std::string latency_report_json(const LatencyReport& report) {
  JsonObject object;
  object.emplace("encode", stat_json(report.encode));
  object.emplace("wire", stat_json(report.wire));
  object.emplace("hold", stat_json(report.hold));
  object.emplace("deliver", stat_json(report.deliver));
  object.emplace("kv_wait", stat_json(report.kv_wait));
  JsonObject by_sender;
  for (const auto& [sender, stat] : report.hold_by_sender) {
    by_sender.emplace(std::to_string(sender), stat_json(stat));
  }
  object.emplace("hold_by_sender", JsonValue(std::move(by_sender)));
  JsonObject by_pid;
  for (const auto& [pid, stat] : report.kv_wait_by_pid) {
    by_pid.emplace(std::to_string(pid), stat_json(stat));
  }
  object.emplace("kv_wait_by_pid", JsonValue(std::move(by_pid)));
  return JsonValue(std::move(object)).dump();
}

}  // namespace cbc::obs
