#include "obs/trace_merge.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "util/ensure.h"

namespace cbc::obs {

namespace {

const JsonArray& trace_events(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  require(events != nullptr && events->is_array(),
          "chrome trace: missing traceEvents array");
  return events->as_array();
}

}  // namespace

JsonValue parse_chrome_trace(const std::string& text) {
  JsonValue doc = json_parse(text);
  for (const JsonValue& event : trace_events(doc)) {
    require(event.is_object(), "chrome trace: event is not an object");
    const JsonValue* ph = event.find("ph");
    require(ph != nullptr && ph->is_string() && ph->as_string().size() == 1,
            "chrome trace: event missing ph");
    const JsonValue* name = event.find("name");
    require(name != nullptr && name->is_string(),
            "chrome trace: event missing name");
    const JsonValue* ts = event.find("ts");
    require(ts != nullptr && ts->is_number(),
            "chrome trace: event missing ts");
    const JsonValue* pid = event.find("pid");
    require(pid != nullptr && pid->is_number(),
            "chrome trace: event missing pid");
  }
  return doc;
}

TraceSummary summarize_chrome_trace(const JsonValue& doc) {
  TraceSummary summary;
  // cat+id pairs seen for flow starts / ends.
  std::multiset<std::string> starts;
  std::multiset<std::string> ends;
  for (const JsonValue& event : trace_events(doc)) {
    summary.events += 1;
    const std::string& ph = event.find("ph")->as_string();
    const std::string& name = event.find("name")->as_string();
    const auto pid =
        static_cast<std::uint32_t>(event.find("pid")->as_number());
    if (ph == "X" && name == "deliver") {
      summary.deliver_events[pid] += 1;
    }
    if (ph == "s" || ph == "f") {
      const JsonValue* cat = event.find("cat");
      const JsonValue* id = event.find("id");
      require(cat != nullptr && cat->is_string() && id != nullptr &&
                  id->is_string(),
              "chrome trace: flow event missing cat/id");
      const std::string key = cat->as_string() + "#" + id->as_string();
      (ph == "s" ? starts : ends).insert(key);
    }
  }
  for (const std::string& key : starts) {
    const auto it = ends.find(key);
    if (it != ends.end()) {
      if (key.rfind("occurs_after#", 0) == 0) {
        summary.occurs_after_flows += 1;
      } else {
        summary.message_flows += 1;
      }
      ends.erase(it);
    } else {
      summary.unmatched_flows += 1;
    }
  }
  summary.unmatched_flows += ends.size();
  return summary;
}

std::string merge_trace_files(const std::vector<std::string>& paths) {
  require(!paths.empty(), "merge_trace_files: no inputs");
  struct Entry {
    double ts;
    int order;  // metadata first, then input order for equal timestamps
    std::string json;
  };
  std::vector<Entry> entries;
  int order = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    require(static_cast<bool>(in),
            "merge_trace_files: cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    try {
      doc = parse_chrome_trace(buffer.str());
    } catch (const std::exception& e) {
      require(false, "merge_trace_files: " + path + ": " + e.what());
    }
    for (const JsonValue& event : trace_events(doc)) {
      const bool metadata = event.find("ph")->as_string() == "M";
      entries.push_back(Entry{
          .ts = metadata ? -1.0 : event.find("ts")->as_number(),
          .order = order++,
          .json = event.dump(),
      });
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.ts != b.ts) {
                       return a.ts < b.ts;
                     }
                     return a.order < b.order;
                   });
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i].json;
    if (i + 1 < entries.size()) {
      out << ",";
    }
    out << "\n";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace cbc::obs
