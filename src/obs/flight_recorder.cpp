#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>

#include "util/ensure.h"
#include "util/serde.h"

namespace cbc::obs {

namespace {

// On-disk / in-memory image layout. Everything is a naturally aligned
// little-endian u64 word so writers can use std::atomic_ref and the
// decoder can use the serde Reader on the very same bytes.
//
//   header (64 bytes):
//     [0]  magic "CBCFLT01"
//     [8]  u32 version | u32 node_id
//     [16] u64 capacity (power of two)
//     [24] u64 next     (atomic claim counter)
//     [32] i64 wall_anchor_us
//     [40] u32 role | u32 reserved
//     [48] u64 reserved x2
//   slot (40 bytes each):
//     [0]  u64 stamp    (0 = empty/in-flux, else ticket + 1)
//     [8]  i64 ts_us
//     [16] u64 seq
//     [24] u64 meta     (sender | event << 32)
//     [32] u64 arg
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kSlotSize = 40;
constexpr char kMagic[8] = {'C', 'B', 'C', 'F', 'L', 'T', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxCapacity = std::uint64_t{1} << 26;
constexpr std::uint8_t kMaxEvent =
    static_cast<std::uint8_t>(FlightEvent::kMark);

std::uint64_t* word_at(unsigned char* base, std::size_t offset) {
  return reinterpret_cast<std::uint64_t*>(base + offset);  // NOLINT
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

std::atomic<FlightRecorder*> g_flight{nullptr};

}  // namespace

const char* flight_event_name(FlightEvent event) {
  switch (event) {
    case FlightEvent::kSubmit:
      return "submit";
    case FlightEvent::kEncode:
      return "encode";
    case FlightEvent::kWireTx:
      return "wire_tx";
    case FlightEvent::kWireRx:
      return "wire_rx";
    case FlightEvent::kHoldEnter:
      return "hold_enter";
    case FlightEvent::kHoldExit:
      return "hold_exit";
    case FlightEvent::kDeliver:
      return "deliver";
    case FlightEvent::kStablePoint:
      return "stable_point";
    case FlightEvent::kKvPark:
      return "kv_park";
    case FlightEvent::kKvDrain:
      return "kv_drain";
    case FlightEvent::kFault:
      return "fault";
    case FlightEvent::kMark:
      return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  require(options_.capacity > 0, "FlightRecorder: zero capacity");
  capacity_ = round_up_pow2(options_.capacity);
  require(capacity_ <= kMaxCapacity, "FlightRecorder: capacity too large");
  region_size_ = kHeaderSize + capacity_ * kSlotSize;
  if (!options_.path.empty()) {
    const int fd = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                          0644);
    require(fd >= 0, "FlightRecorder: cannot create " + options_.path);
    if (::ftruncate(fd, static_cast<off_t>(region_size_)) != 0) {
      ::close(fd);
      require(false, "FlightRecorder: cannot size " + options_.path);
    }
    void* mapped = ::mmap(nullptr, region_size_, PROT_READ | PROT_WRITE,
                          MAP_SHARED, fd, 0);
    ::close(fd);
    require(mapped != MAP_FAILED,
            "FlightRecorder: cannot map " + options_.path);
    base_ = static_cast<unsigned char*>(mapped);
    mapped_file_ = true;
  } else {
    // Zero-initialized and 8-aligned (u64 array), matching a fresh file.
    base_ = reinterpret_cast<unsigned char*>(  // NOLINT
        new std::uint64_t[region_size_ / sizeof(std::uint64_t)]{});
  }
  std::memcpy(base_, kMagic, sizeof(kMagic));
  *word_at(base_, 8) = static_cast<std::uint64_t>(kVersion) |
                       (static_cast<std::uint64_t>(options_.node_id) << 32);
  *word_at(base_, 16) = capacity_;
  *word_at(base_, 24) = 0;
  *word_at(base_, 32) =
      static_cast<std::uint64_t>(Tracer::wall_now_us());
  *word_at(base_, 40) = static_cast<std::uint64_t>(options_.role);
}

FlightRecorder::~FlightRecorder() {
  if (flight_recorder() == this) {
    install_flight_recorder(nullptr);
  }
  if (mapped_file_) {
    ::munmap(base_, region_size_);
  } else {
    delete[] reinterpret_cast<std::uint64_t*>(base_);  // NOLINT
  }
}

void FlightRecorder::record(FlightEvent event, const MessageId& id,
                            std::uint64_t arg) {
  const std::uint64_t ticket =
      std::atomic_ref<std::uint64_t>(*word_at(base_, 24))
          .fetch_add(1, std::memory_order_relaxed);
  unsigned char* slot =
      base_ + kHeaderSize + (ticket & (capacity_ - 1)) * kSlotSize;
  std::atomic_ref<std::uint64_t> stamp(*word_at(slot, 0));
  // Per-slot seqlock: the acq_rel exchange pins the field stores after
  // the invalidation; the release publish pins them before the stamp. A
  // concurrent reader (or the decoder, after a mid-record death) sees
  // stamp 0 or a ticket mismatch and skips the slot.
  stamp.exchange(0, std::memory_order_acq_rel);
  std::atomic_ref<std::uint64_t>(*word_at(slot, 8))
      .store(static_cast<std::uint64_t>(Tracer::wall_now_us()),
             std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(*word_at(slot, 16))
      .store(id.seq, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(*word_at(slot, 24))
      .store(static_cast<std::uint64_t>(id.sender) |
                 (static_cast<std::uint64_t>(event) << 32),
             std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(*word_at(slot, 32))
      .store(arg, std::memory_order_relaxed);
  stamp.store(ticket + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::total_recorded() const {
  return std::atomic_ref<std::uint64_t>(*word_at(base_, 24))
      .load(std::memory_order_relaxed);
}

bool FlightRecorder::dump(const char* path) const {
  if (mapped_file_) {
    // The shared mapping IS the dump; flush is best-effort (the kernel
    // persists it on any process death, SIGKILL included).
    ::msync(base_, region_size_, MS_ASYNC);
    return true;
  }
  if (path == nullptr || path[0] == '\0') {
    return false;
  }
  // Atomic + async-signal-safe: raw writes to a tmp name, then rename.
  // No allocation — the tmp name and copy buffer live on the stack.
  char tmp[512];
  const std::size_t len = std::strlen(path);
  if (len + 8 >= sizeof(tmp)) {
    return false;
  }
  std::memcpy(tmp, path, len);
  std::memcpy(tmp + len, ".tmp", 5);
  const int fd = ::open(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  unsigned char buffer[4096];
  std::size_t filled = 0;
  bool ok = true;
  for (std::size_t offset = 0; offset < region_size_ && ok;
       offset += sizeof(std::uint64_t)) {
    // Relaxed atomic loads: concurrent writers may still be appending.
    const std::uint64_t word =
        std::atomic_ref<std::uint64_t>(*word_at(base_, offset))
            .load(std::memory_order_relaxed);
    std::memcpy(buffer + filled, &word, sizeof(word));
    filled += sizeof(word);
    if (filled == sizeof(buffer) ||
        offset + sizeof(std::uint64_t) >= region_size_) {
      for (std::size_t done = 0; done < filled;) {
        const ssize_t n = ::write(fd, buffer + done, filled - done);
        if (n <= 0) {
          ok = false;
          break;
        }
        done += static_cast<std::size_t>(n);
      }
      filled = 0;
    }
  }
  ok = ::close(fd) == 0 && ok;
  ok = ok && ::rename(tmp, path) == 0;
  return ok;
}

std::vector<std::uint8_t> FlightRecorder::snapshot_bytes() const {
  std::vector<std::uint8_t> out(region_size_);
  for (std::size_t offset = 0; offset < region_size_;
       offset += sizeof(std::uint64_t)) {
    const std::uint64_t word =
        std::atomic_ref<std::uint64_t>(*word_at(base_, offset))
            .load(std::memory_order_relaxed);
    std::memcpy(out.data() + offset, &word, sizeof(word));
  }
  return out;
}

FlightRecorder* flight_recorder() {
  return g_flight.load(std::memory_order_relaxed);
}

void install_flight_recorder(FlightRecorder* recorder) {
  g_flight.store(recorder, std::memory_order_release);
}

FlightDump decode_flight_dump(std::span<const std::uint8_t> bytes) {
  FlightDump dump;
  try {
    Reader reader(bytes);
    char magic[8];
    for (char& c : magic) {
      c = static_cast<char>(reader.u8());
    }
    require(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "flight dump: bad magic");
    const std::uint32_t version = reader.u32();
    require(version == kVersion, "flight dump: unsupported version");
    dump.node_id = reader.u32();
    dump.capacity = reader.u64();
    require(dump.capacity > 0 && dump.capacity <= kMaxCapacity &&
                (dump.capacity & (dump.capacity - 1)) == 0,
            "flight dump: implausible capacity");
    dump.total_recorded = reader.u64();
    dump.wall_anchor_us = reader.i64();
    dump.role = reader.u32();
    reader.u32();  // reserved
    reader.u64();  // reserved
    reader.u64();  // reserved
    require(reader.remaining() == dump.capacity * kSlotSize,
            "flight dump: truncated slot region");
    for (std::uint64_t index = 0; index < dump.capacity; ++index) {
      const std::uint64_t stamp = reader.u64();
      const std::int64_t ts_us = reader.i64();
      const std::uint64_t seq = reader.u64();
      const std::uint64_t meta = reader.u64();
      const std::uint64_t arg = reader.u64();
      if (stamp == 0) {
        continue;  // never written, or caught mid-record
      }
      const std::uint64_t ticket = stamp - 1;
      const std::uint64_t event_byte = (meta >> 32) & 0xFF;
      if ((ticket & (dump.capacity - 1)) != index || event_byte == 0 ||
          event_byte > kMaxEvent || ts_us < 0) {
        dump.torn += 1;
        continue;
      }
      FlightRecord record;
      record.ticket = ticket;
      record.ts_us = ts_us;
      record.id = MessageId{static_cast<NodeId>(meta & 0xFFFFFFFF), seq};
      record.event = static_cast<FlightEvent>(event_byte);
      record.arg = arg;
      dump.records.push_back(record);
    }
  } catch (const SerdeError& e) {
    require(false, std::string("flight dump: ") + e.what());
  }
  std::sort(dump.records.begin(), dump.records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ticket < b.ticket;
            });
  return dump;
}

std::vector<TraceEvent> flight_to_trace_events(const FlightDump& dump) {
  std::vector<TraceEvent> events;
  events.reserve(dump.records.size() + 1);
  TraceEvent meta;
  meta.name = "process_name";
  meta.cat = "__metadata";
  meta.ph = 'M';
  meta.pid = dump.node_id;
  meta.args_json = std::string("\"name\":\"") +
                   (dump.role == 1 ? "kv " : "node ") +
                   std::to_string(dump.node_id) + " flight\"";
  events.push_back(std::move(meta));
  for (const FlightRecord& record : dump.records) {
    TraceEvent event;
    event.name = flight_event_name(record.event);
    event.cat = "flight";
    event.pid = dump.node_id;
    event.args_json = "\"msg\":\"" + record.id.to_string() +
                      "\",\"arg\":" + std::to_string(record.arg) +
                      ",\"ticket\":" + std::to_string(record.ticket);
    if (record.event == FlightEvent::kDeliver) {
      // Mirror the live tracer's deliver span: duration = hold time.
      event.ph = 'X';
      const auto held = static_cast<std::int64_t>(record.arg);
      event.ts_us = record.ts_us - std::max<std::int64_t>(held, 0);
      event.dur_us = std::max<std::int64_t>(held, 0);
    } else {
      event.ph = 'i';
      event.ts_us = record.ts_us;
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace cbc::obs
