// InstrumentationLayer — a transparent ProtocolLayer decorator that
// meters the stack boundary it sits on: broadcasts submitted through it,
// deliveries crossing it, and the submit→deliver latency of each
// delivery (delivered_at - sent_at on the transport clock — the full
// encode → wire → hold pipeline below this layer).
//
// Splice one instance per boundary you care about; the hooks prefix
// names the boundary ("stack", "app", ...), so two layers in one stack
// expose distinct metric names. Header-only so cbc_obs stays a leaf
// library (this includes the stack layer headers; only executables and
// tests that use the layer pay the dependency).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stack/protocol_layer.h"

namespace cbc::obs {

/// Transparent metering decorator over any BroadcastMember.
class InstrumentationLayer final : public ProtocolLayer {
 public:
  struct Options {
    Hooks obs;
  };

  InstrumentationLayer(std::unique_ptr<BroadcastMember> lower, Options options)
      : ProtocolLayer(std::move(lower)), obs_(std::move(options.obs)) {
    if (obs_.prefix.empty()) {
      obs_.prefix = "stack";
    }
    if (obs_.has_metrics()) {
      broadcasts_ = &obs_.metrics->counter(obs_.prefix + ".broadcasts");
      deliveries_ = &obs_.metrics->counter(obs_.prefix + ".deliveries");
      latency_us_ =
          &obs_.metrics->histogram(obs_.prefix + ".submit_to_deliver_us");
    }
  }

  MessageId broadcast(std::string label, std::vector<std::uint8_t> payload,
                      const DepSpec& deps) override {
    if (broadcasts_ != nullptr) {
      broadcasts_->inc();
    }
    return ProtocolLayer::broadcast(std::move(label), std::move(payload),
                                    deps);
  }

 protected:
  void on_lower_delivery(const Delivery& delivery) override {
    if (deliveries_ != nullptr) {
      deliveries_->inc();
      // sent_at/delivered_at share the transport clock, so the difference
      // is the whole submit→deliver pipeline below this layer.
      if (delivery.delivered_at >= delivery.sent_at) {
        latency_us_->record(
            static_cast<double>(delivery.delivered_at - delivery.sent_at));
      }
    }
    deliver_up(delivery);
  }

 private:
  Hooks obs_;
  Counter* broadcasts_ = nullptr;
  Counter* deliveries_ = nullptr;
  LatencyHistogram* latency_us_ = nullptr;
};

}  // namespace cbc::obs
