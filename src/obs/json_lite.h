// Minimal JSON DOM — just enough to parse, validate, and re-emit Chrome
// trace-event files without an external dependency. Supports the full
// JSON value grammar (objects, arrays, strings with escapes, numbers,
// bools, null); numbers are held as double. Parse errors throw
// InvalidArgument with a byte offset.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cbc::obs {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::Number), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::String), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a);
  explicit JsonValue(JsonObject o);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }

  /// Typed accessors; throw InvalidArgument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Compact JSON re-serialization.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so JsonValue stays movable/copyable with incomplete siblings.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one JSON document (rejecting trailing garbage). Throws
/// InvalidArgument on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace cbc::obs
