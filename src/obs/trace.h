// Causal tracing — per-envelope spans and flow edges in Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// The paper's explicit Occurs_After DAG is exactly the causality metadata
// distributed tracers normally have to reconstruct; here it is carried on
// every envelope already (the MessageId and DepSpec), so tracing needs no
// wire-format change at all: every event is keyed by the MessageId that
// the envelope codec transports end to end. A Tracer per process records:
//
//   - `submit` instants + a per-message flow start at OSend/ASend submit;
//   - transport events: batch flushes, reliable (re)transmits and
//     duplicate drops, UDP datagram send/recv;
//   - `deliver` complete events (ph "X") whose duration is the causal
//     hold time, bound to the message flow (cross-process arrow from the
//     submitting node) and to one `Occurs_After` flow edge per declared
//     dependency (from the dependency's local deliver — causal delivery
//     guarantees the dependency was delivered here first);
//   - `stable_point` instants from the invariant checker.
//
// Timestamps are wall-clock microseconds (CLOCK_REALTIME), NOT the
// transport clock, so per-process trace files from one ClusterHarness run
// merge into a single timeline (obs/trace_merge.h); the `pid` field is
// the member's NodeId. Durations (hold time) are measured on the
// transport clock and only *rendered* into the wall timeline.
//
// Off-switch: a null Tracer pointer in obs::Hooks is the zero-overhead
// default (one pointer test per site); set_enabled(false) mutes a live
// tracer; building with -DCBC_OBS=OFF compiles every site out entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/message_id.h"
#include "obs/hooks.h"
#include "util/thread_annotations.h"

namespace cbc::obs {

/// One Chrome trace event. `args_json` is a pre-rendered fragment of
/// `"key":value` pairs (no surrounding braces).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'i';             ///< i / X / s / f / M
  std::int64_t ts_us = 0;    ///< wall-clock micros
  std::int64_t dur_us = 0;   ///< ph == 'X' only
  std::uint32_t pid = 0;
  std::uint64_t flow_id = 0; ///< ph == 's' / 'f' only
  std::string args_json;
};

/// Per-process trace sink. Thread-safe (one mutex around the event
/// buffer); the enabled() fast path is a relaxed atomic load.
class Tracer {
 public:
  struct Options {
    std::uint32_t pid = 0;          ///< rendered pid (the member's NodeId)
    std::string process_name;       ///< Perfetto process label
    std::size_t max_events = 1'000'000;  ///< drop (and count) beyond this
  };

  explicit Tracer(Options options);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Wall-clock microseconds (CLOCK_REALTIME) — shared across processes.
  [[nodiscard]] static std::int64_t wall_now_us();

  void instant(std::string_view name, std::string_view cat,
               std::int64_t ts_us, std::string args_json = {});
  void complete(std::string_view name, std::string_view cat,
                std::int64_t ts_us, std::int64_t dur_us,
                std::string args_json = {});
  void flow_start(std::string_view name, std::string_view cat,
                  std::uint64_t flow_id, std::int64_t ts_us);
  void flow_end(std::string_view name, std::string_view cat,
                std::uint64_t flow_id, std::int64_t ts_us);

  /// Remembers when a message was delivered locally, so later messages
  /// can draw Occurs_After flow edges back to it.
  void note_deliver(const MessageId& id, std::int64_t ts_us);
  [[nodiscard]] std::optional<std::int64_t> deliver_ts(
      const MessageId& id) const;

  [[nodiscard]] std::size_t size() const;
  /// Events dropped at the max_events cap.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<TraceEvent> events_snapshot() const;

  /// Writes `{"traceEvents":[...]}` (one event per line). Returns false
  /// when the file cannot be opened.
  bool write_file(const std::string& path) const;
  [[nodiscard]] std::string render_chrome_json() const;

 private:
  void push(TraceEvent event);

  Options options_;
  std::atomic<bool> enabled_{true};
  mutable Mutex mutex_{kRankLeaf, "trace buffer"};
  std::vector<TraceEvent> events_ CBC_GUARDED_BY(mutex_);
  std::unordered_map<MessageId, std::int64_t> deliver_ts_
      CBC_GUARDED_BY(mutex_);
  std::uint64_t dropped_ CBC_GUARDED_BY(mutex_) = 0;
};

/// Escapes a string for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders a list of events as one `{"traceEvents":[...]}` document —
/// the serializer behind Tracer::render_chrome_json, shared with the
/// flight-recorder decoder so both produce byte-identical schema.
[[nodiscard]] std::string render_trace_events(
    const std::vector<TraceEvent>& events);

/// Stable flow id of one message (its hash).
[[nodiscard]] inline std::uint64_t flow_id(const MessageId& id) {
  return std::hash<MessageId>{}(id);
}

/// Flow id of one Occurs_After edge dep -> dependent.
[[nodiscard]] inline std::uint64_t edge_flow_id(const MessageId& dep,
                                                const MessageId& dependent) {
  return flow_id(dep) * 0x9E3779B97F4A7C15ULL ^ flow_id(dependent);
}

/// True when the hooks carry a live tracer (and observability is compiled
/// in) — the one branch on every instrumented site.
[[nodiscard]] inline bool tracing(const Hooks& hooks) {
  return kCompiledIn && hooks.tracer != nullptr && hooks.tracer->enabled();
}

}  // namespace cbc::obs
