// Observability injection point shared by every instrumented component.
//
// A component that wants metrics/tracing takes an `obs::Hooks` in its
// Options struct. Both pointers default to nullptr, which is the runtime
// off-switch: an un-instrumented member pays one pointer test per site
// and nothing else. The pointees are NOT owned — the caller (cbc_node,
// a test, ClusterHarness plumbing) keeps them alive for the component's
// lifetime.
//
// Building with -DCBC_OBS=OFF defines CBC_OBS_OFF, which turns
// `kCompiledIn` into a compile-time false so the optimizer deletes every
// instrumented branch outright (the BENCH_m1 off-switch criterion).
#pragma once

#include <string>

namespace cbc::obs {

class MetricsRegistry;
class Tracer;

#ifdef CBC_OBS_OFF
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Borrowed observability sinks, injected through component Options.
struct Hooks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Metric-name prefix for this component instance, e.g. "osend".
  /// Components append ".counter_name" to it.
  std::string prefix;

  [[nodiscard]] bool any() const {
    return kCompiledIn && (metrics != nullptr || tracer != nullptr);
  }
  [[nodiscard]] bool has_metrics() const {
    return kCompiledIn && metrics != nullptr;
  }
};

}  // namespace cbc::obs
