// cbc_flight: decode flight-recorder dumps into Chrome trace JSON.
//
//   cbc_flight -o postmortem.json flight_node2.bin [more.bin ...]
//   cbc_flight --summary flight_node2.bin
//
// The output is the same trace-event schema live Tracers write, so a
// postmortem merges into the surviving nodes' timeline:
//
//   cbc_trace_merge -o merged.json trace0.json trace1.json postmortem.json
//
// Exit 1 on a corrupt dump; exit 2 on usage errors. Per-record damage
// (a writer killed mid-record, fuzzed bytes) is skipped and reported,
// not fatal — the rest of the ring is still evidence.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace {

int usage() {
  std::cerr << "usage: cbc_flight -o <out.json> <dump.bin>...\n"
               "       cbc_flight --summary <dump.bin>...\n";
  return 2;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  out.assign(bytes.begin(), bytes.end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  bool summary_only = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        return usage();
      }
      output = argv[++i];
    } else if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() || (output.empty() && !summary_only)) {
    return usage();
  }
  std::vector<cbc::obs::TraceEvent> events;
  for (const std::string& path : inputs) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(path, bytes)) {
      std::cerr << "cbc_flight: cannot read " << path << "\n";
      return 1;
    }
    try {
      const cbc::obs::FlightDump dump = cbc::obs::decode_flight_dump(bytes);
      std::cerr << "cbc_flight: " << path << ": node " << dump.node_id
                << " role " << dump.role << ", " << dump.records.size()
                << " records (" << dump.total_recorded << " recorded, ring "
                << dump.capacity << ", " << dump.torn << " torn)\n";
      std::vector<cbc::obs::TraceEvent> decoded =
          cbc::obs::flight_to_trace_events(dump);
      events.insert(events.end(), std::make_move_iterator(decoded.begin()),
                    std::make_move_iterator(decoded.end()));
    } catch (const std::exception& e) {
      std::cerr << "cbc_flight: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  if (summary_only) {
    return 0;
  }
  std::ofstream out(output, std::ios::trunc);
  if (!out) {
    std::cerr << "cbc_flight: cannot write " << output << "\n";
    return 1;
  }
  out << cbc::obs::render_trace_events(events);
  return out ? 0 : 1;
}
