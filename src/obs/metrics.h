// MetricsRegistry — the unified, lock-free-hot-path metrics surface.
//
// Every layer of the stack (transport, net, causal, total, check) exposes
// its counters through one registry so a running node can be scraped or
// dumped as a single document. Three primitive families:
//
//   - Counter:  monotonically increasing atomic u64 (relaxed increments —
//     the hot path is one fetch_add, no lock, no branch);
//   - Gauge:    settable atomic i64 (queue depths, holdback depth);
//   - LatencyHistogram: fixed-bucket distribution with atomic bucket
//     counters. Distinct from the sample-storing bench cbc::Histogram
//     (util/stats.h): this one never allocates on record(), answers only
//     bucket-resolution percentiles, and is safe to scrape concurrently.
//
// Primitives are registered by name and owned by the registry; components
// resolve them ONCE at construction and hold plain pointers, so the
// per-event cost is a relaxed atomic op. Registration, collectors, and
// rendering take the registry mutex (cold paths only).
//
// Components whose stats predate the registry (OrderingStats,
// ReliableStats, BatchStats, UdpTransport::Stats) migrate via *collectors*:
// a callback that reads the component's own struct (under the component's
// lock) and emits name/value pairs at scrape time. obs/collectors.h has
// ready-made adapters.
//
// Exposition: render_prometheus() emits the Prometheus plaintext format
// (counters, gauges, cumulative `_bucket{le=...}` histograms plus
// `_p50`/`_p90`/`_p99` percentile gauges, names sanitized and prefixed
// `cbc_`), which is what cbc_node serves over TCP and dumps on SIGUSR2. snapshot() returns the same data as a flat map for
// tests and bench/compare.py behavioral gates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace cbc::obs {

/// Monotonic atomic counter. Hot path: one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins atomic gauge (plus a monotone max helper).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `value` if it is below it (peak tracking).
  void record_max(std::int64_t value);
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency distribution; record() is lock-free (a linear
/// bucket scan over ~20 bounds plus one relaxed fetch_add).
class LatencyHistogram {
 public:
  /// `upper_bounds` must be strictly increasing; values above the last
  /// bound land in the implicit +inf bucket. Units are by convention
  /// microseconds (the name should end in `_us`).
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  /// Exponential 1us .. 5s default bounds.
  [[nodiscard]] static std::vector<double> default_bounds();

  void record(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of recorded values (rounded to whole units per sample).
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; last entry is the +inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Bucket-resolution percentile estimate (linear interpolation within
  /// the winning bucket); q in [0,100]. Returns 0 when empty.
  [[nodiscard]] double percentile_estimate(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Receives name/value pairs from scrape-time collectors.
class CollectorSink {
 public:
  void counter(const std::string& name, std::uint64_t value);
  void gauge(const std::string& name, double value);

 private:
  friend class MetricsRegistry;
  // (name, value, is_counter) in emission order.
  std::vector<std::tuple<std::string, double, bool>> values_;
};

class MetricsRegistry;

/// RAII collector registration: unregisters on destruction, so a
/// component may outlive or predecease the scrape loop safely (the
/// registry itself must outlive the handle).
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  CollectorHandle(CollectorHandle&& other) noexcept { *this = std::move(other); }
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle() { reset(); }

  void reset();
  [[nodiscard]] bool attached() const { return registry_ != nullptr; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Owns named metric primitives and scrape-time collectors; renders the
/// Prometheus plaintext exposition. Thread-safe; primitive lookups return
/// stable references valid for the registry's lifetime.
class MetricsRegistry {
 public:
  using CollectFn = std::function<void(CollectorSink&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; dotted names ("osend.delivered") are conventional
  /// and sanitized to Prometheus form only at render time.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation (empty = default bounds).
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name,
                                            std::vector<double> bounds = {});

  /// Registers a scrape-time value source; prefer CollectorHandle for
  /// automatic unregistration.
  [[nodiscard]] CollectorHandle register_collector(CollectFn fn);
  void unregister_collector(std::size_t id);

  /// Flat name -> value view: counters and gauges verbatim, histograms
  /// expanded to `name.count`, `name.sum`, and `name.p50`/`p90`/`p99`
  /// estimates, plus every collector's output. For tests and compare.py.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// Labels stamped on EVERY series in render_prometheus() — the
  /// multi-process identity story: a cbc_kv replica sets
  /// {shard="2",replica="0"} once and a single scrape target set tells
  /// every process apart. Purely an exposition concern: snapshot() and
  /// metric names stay flat (compare.py baselines are label-free).
  void set_default_labels(
      std::vector<std::pair<std::string, std::string>> labels);

  /// Prometheus plaintext exposition (text/plain; version 0.0.4).
  [[nodiscard]] std::string render_prometheus() const;

  /// Process-wide default registry (cbc_node's exposition surface).
  [[nodiscard]] static MetricsRegistry& global();

 private:
  // Ranked BELOW every component lock (kRankRegistry): the scrape path
  // holds it while collectors take component locks. Never resolve a
  // metric while holding a component lock — resolve handles up front.
  mutable Mutex mutex_{kRankRegistry, "metrics registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CBC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      CBC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      CBC_GUARDED_BY(mutex_);
  std::size_t next_collector_id_ CBC_GUARDED_BY(mutex_) = 1;
  std::vector<std::pair<std::size_t, CollectFn>> collectors_
      CBC_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::string>> default_labels_
      CBC_GUARDED_BY(mutex_);
};

/// Sanitizes a dotted metric name to Prometheus form: `cbc_` prefix,
/// non-[a-zA-Z0-9_] characters replaced with '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace cbc::obs
