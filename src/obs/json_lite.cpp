#include "obs/json_lite.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/ensure.h"

namespace cbc::obs {

JsonValue::JsonValue(JsonArray a)
    : kind_(Kind::Array), array_(std::make_shared<JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : kind_(Kind::Object),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

bool JsonValue::as_bool() const {
  require(kind_ == Kind::Bool, "json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(kind_ == Kind::Number, "json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::String, "json: not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  require(kind_ == Kind::Array, "json: not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  require(kind_ == Kind::Object, "json: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) {
    return nullptr;
  }
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

namespace {

void dump_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void dump_value(std::ostream& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out << "null";
      break;
    case JsonValue::Kind::Bool:
      out << (v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::Number: {
      const double n = v.as_number();
      // Integral values print without a fraction (trace ts/pid fields).
      if (n == static_cast<double>(static_cast<long long>(n))) {
        out << static_cast<long long>(n);
      } else {
        out << n;
      }
      break;
    }
    case JsonValue::Kind::String:
      dump_string(out, v.as_string());
      break;
    case JsonValue::Kind::Array: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) {
          out << ',';
        }
        first = false;
        dump_value(out, item);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) {
          out << ',';
        }
        first = false;
        dump_string(out, key);
        out << ':';
        dump_value(out, item);
      }
      out << '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    require(pos_ == text_.size(), error("trailing characters"));
    return value;
  }

 private:
  [[nodiscard]] std::string error(const std::string& what) const {
    return "json parse error at byte " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    require(pos_ < text_.size(), error("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c,
            error(std::string("expected '") + c + "', got '" + text_[pos_] +
                  "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        require(consume_literal("true"), error("bad literal"));
        return JsonValue(true);
      case 'f':
        require(consume_literal("false"), error("bad literal"));
        return JsonValue(false);
      case 'n':
        require(consume_literal("null"), error("bad literal"));
        return {};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      require(peek() == '"', error("expected object key"));
      std::string key = parse_string();
      expect(':');
      object.emplace(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), error("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), error("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), error("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              require(false, error("bad \\u escape"));
            }
          }
          // UTF-8 encode (surrogate pairs unsupported; trace text is
          // ASCII in practice, so map them to U+FFFD-style bytes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          require(false, error("bad escape"));
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    require(pos_ > start, error("expected a value"));
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    require(ec == std::errc() && ptr == text_.data() + pos_,
            error("bad number"));
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::ostringstream out;
  dump_value(out, *this);
  return out.str();
}

JsonValue json_parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace cbc::obs
