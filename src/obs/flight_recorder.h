// Always-on flight recorder — a fixed-size lock-free ring of binary
// per-envelope events that survives the process.
//
// The Tracer (obs/trace.h) answers "what happened" when tracing was
// switched on ahead of time; the flight recorder answers it after a
// crash nobody scheduled. Every `cbc_node`/`cbc_kv` process keeps one
// recording continuously: each protocol stage (submit, encode, wire
// tx/rx, causal-hold enter/exit, deliver, stable point, kv park/drain,
// fault decisions) appends one 40-byte record keyed by the `MessageId`
// the envelope codec already carries end to end. The ring overwrites
// oldest-first, so the file is always "the last N things this process
// did" at a cost of one relaxed fetch_add, five relaxed stores, and a
// vDSO clock read per event — well under the 5% budget the BENCH_m1
// gate enforces.
//
// Two backing modes:
//  - file-backed (`Options::path`): the ring lives in a shared file
//    mapping, so the journal survives ANY death — SIGKILL included —
//    with no dump step at all. This is what the binaries run.
//  - in-memory (empty path): tests and library users; `dump(path)`
//    writes an atomic snapshot (tmp + rename, raw write(2) only — safe
//    to call from a signal handler or a FaultPlan crash point).
//
// Writers follow a per-slot seqlock: claim a ticket with one fetch_add,
// invalidate the slot's stamp, store the fields, then publish the stamp
// (ticket + 1, release). A reader (or the offline decoder looking at a
// file whose writer died mid-record) sees either a whole record or a
// stamp/ticket mismatch it can skip — never a torn record presented as
// valid. `cbc_flight` decodes dumps into the Chrome trace schema of
// obs/trace.h so postmortems merge into the same Perfetto timeline as
// live traces (`cbc_trace_merge merged.json survivors... killed.json`).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/message_id.h"
#include "obs/hooks.h"
#include "obs/trace.h"

namespace cbc::obs {

/// Protocol stage of one flight record. Values are the on-disk encoding;
/// append only.
enum class FlightEvent : std::uint8_t {
  kSubmit = 1,       ///< broadcast submitted, id assigned
  kEncode = 2,       ///< frame encoded; arg = encoded bytes
  kWireTx = 3,       ///< data frame handed to the wire; arg = peer id
  kWireRx = 4,       ///< data frame received; arg = peer id
  kHoldEnter = 5,    ///< entered the causal hold-back queue; arg = missing deps
  kHoldExit = 6,     ///< left the hold-back queue; arg = hold micros
  kDeliver = 7,      ///< delivered to the application; arg = hold micros
  kStablePoint = 8,  ///< stable point closed; arg = cycle
  kKvPark = 9,       ///< kv request parked on a context frontier; arg = session
  kKvDrain = 10,     ///< parked kv request drained; arg = wait micros
  kFault = 11,       ///< FaultPlan decision; arg = FaultKind
  kMark = 12,        ///< free-form process marker; arg caller-defined
};

/// Which FaultPlan decision fired — the `arg` of a kFault record.
enum class FaultKind : std::uint8_t {
  kDrop = 1,
  kDuplicate = 2,
  kDelay = 3,
  kReorder = 4,
  kPartitionDrop = 5,
  kCrashDrop = 6,
  kCrash = 7,  ///< scripted local crash point about to fire
};

/// Human-readable name of one event kind ("?" for values outside the
/// enum — the decoder uses that as a validity check).
[[nodiscard]] const char* flight_event_name(FlightEvent event);

/// One decoded journal entry (the in-memory, validated form).
struct FlightRecord {
  std::uint64_t ticket = 0;  ///< global claim order (monotonic per process)
  std::int64_t ts_us = 0;    ///< wall-clock micros (CLOCK_REALTIME)
  MessageId id;
  FlightEvent event = FlightEvent::kMark;
  std::uint64_t arg = 0;
};

/// The always-on journal. All methods are thread-safe; record() is
/// lock-free and signal-safe (no allocation, no locks, no syscalls
/// beyond the vDSO clock read).
class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity in records. Rounded up to a power of two.
    std::size_t capacity = 1 << 14;
    /// NodeId stamped into the header (decodes as the trace pid).
    std::uint32_t node_id = 0;
    /// Role tag for the decoded process label: 0 = cbc_node, 1 = cbc_kv.
    std::uint32_t role = 0;
    /// When non-empty, the ring lives in a shared mapping of this file
    /// and survives SIGKILL; when empty, the ring is heap memory and
    /// only dump() persists it.
    std::string path;
    /// Target of the no-argument dump() for in-memory rings (the
    /// crash-signal / SIGUSR2 / invariant-violation triggers).
    /// File-backed rings ignore it — the mapping IS the dump.
    std::string dump_path;
  };

  /// Throws InvalidArgument when a file backing cannot be created.
  explicit FlightRecorder(Options options);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one record. Never blocks, never fails; overwrites the
  /// oldest record when the ring is full.
  void record(FlightEvent event, const MessageId& id, std::uint64_t arg = 0);

  /// Total records ever claimed (>= capacity() means the ring wrapped).
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool file_backed() const { return mapped_file_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Persists the journal. File-backed rings flush the mapping (the
  /// data already survives without this); in-memory rings write an
  /// atomic snapshot to `path` (tmp + rename). Signal-safe: raw
  /// open/write/rename only, no allocation. Returns false on I/O error.
  bool dump(const char* path) const;
  /// dump() to Options::dump_path (false when neither backing file nor
  /// dump_path exists to persist into).
  bool dump() const { return dump(options_.dump_path.c_str()); }

  /// Serializes header + slots into a byte vector (test convenience;
  /// NOT signal-safe).
  [[nodiscard]] std::vector<std::uint8_t> snapshot_bytes() const;

 private:
  Options options_;
  std::size_t capacity_ = 0;    // power of two
  std::size_t region_size_ = 0; // header + slots, bytes
  unsigned char* base_ = nullptr;
  bool mapped_file_ = false;
};

/// Process-wide recorder used by the `flight_record` fast path below.
/// Not owned; install nullptr to detach before destroying the recorder.
[[nodiscard]] FlightRecorder* flight_recorder();
void install_flight_recorder(FlightRecorder* recorder);

/// The one call instrumented sites make. Cost with no recorder
/// installed: a relaxed pointer load and a branch; compiled out
/// entirely under -DCBC_OBS=OFF.
inline void flight_record(FlightEvent event, const MessageId& id,
                          std::uint64_t arg = 0) {
  if constexpr (kCompiledIn) {
    if (FlightRecorder* recorder = flight_recorder()) {
      recorder->record(event, id, arg);
    }
  }
}

/// A decoded dump: header fields plus the surviving records in claim
/// order. `torn` counts slots skipped for stamp/ticket mismatch or an
/// out-of-range event byte (a writer died mid-record, or fuzz damage).
struct FlightDump {
  std::uint32_t node_id = 0;
  std::uint32_t role = 0;
  std::uint64_t capacity = 0;
  std::uint64_t total_recorded = 0;
  std::int64_t wall_anchor_us = 0;
  std::size_t torn = 0;
  std::vector<FlightRecord> records;
};

/// Decodes a dump image (file contents). Throws InvalidArgument on
/// structural corruption (bad magic/version, absurd capacity,
/// truncation); per-record damage is skipped and counted in `torn`.
[[nodiscard]] FlightDump decode_flight_dump(
    std::span<const std::uint8_t> bytes);

/// Renders a decoded dump as Chrome trace events in the schema of
/// obs/trace.h — instants per stage plus a `deliver` complete event
/// whose duration is the causal hold time — so `cbc_trace_merge`
/// accepts the output alongside live Tracer files.
[[nodiscard]] std::vector<TraceEvent> flight_to_trace_events(
    const FlightDump& dump);

}  // namespace cbc::obs
