// Stitches the per-process Chrome trace files written by ClusterHarness
// nodes into one cross-process timeline. Each node writes
// `{"traceEvents":[...]}` with wall-clock timestamps and pid = its
// NodeId, so merging is validation + concatenation — the flow events
// (`ph:"s"`/`ph:"f"` with matching cat+id) become cross-process arrows
// once the events share one file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_lite.h"

namespace cbc::obs {

/// What a merged (or single) trace contains — for test assertions and
/// the CI smoke gate.
struct TraceSummary {
  std::size_t events = 0;
  /// pid -> number of `deliver` complete events on that process row.
  std::map<std::uint32_t, std::size_t> deliver_events;
  /// Matched Occurs_After flow edges (a start and an end sharing an id
  /// in the `occurs_after` category).
  std::size_t occurs_after_flows = 0;
  /// Matched per-message submit→deliver flows (`msg` category).
  std::size_t message_flows = 0;
  /// Flow starts/ends whose partner is missing.
  std::size_t unmatched_flows = 0;
};

/// Parses one Chrome trace-event JSON document and validates the
/// required fields on every event. Throws InvalidArgument on malformed
/// input.
[[nodiscard]] JsonValue parse_chrome_trace(const std::string& text);

/// Counts deliver spans per pid and Occurs_After flow pairs in a parsed
/// trace document.
[[nodiscard]] TraceSummary summarize_chrome_trace(const JsonValue& doc);

/// Reads and validates per-node trace files. Throws InvalidArgument if
/// any input fails to load or parse.
[[nodiscard]] std::vector<JsonValue> load_trace_files(
    const std::vector<std::string>& paths);

/// Per-pid clock correction in micros to ADD to that pid's timestamps,
/// derived from the `clock_offset` instants (cat "clock") the reliable
/// endpoints emit: each instant on pid A reporting peer B carries
/// offset_us = (B's wall clock − A's wall clock). The lowest pid of
/// each connected component anchors it at correction 0; the rest follow
/// by BFS over the latest sample per pair. Pids with no clock data get
/// correction 0.
[[nodiscard]] std::map<std::uint32_t, double> clock_corrections(
    const std::vector<JsonValue>& docs);

struct MergeOptions {
  /// Shift every event's ts by its pid's clock correction before
  /// sorting, putting all processes on one estimated wall clock.
  bool align = false;
};

/// Merges parsed per-node trace documents into one sorted document.
[[nodiscard]] std::string merge_trace_docs(const std::vector<JsonValue>& docs,
                                           const MergeOptions& options = {});

/// Reads, validates, and merges per-node trace files into one document;
/// events are sorted by timestamp. Throws InvalidArgument if any input
/// fails to load or parse.
[[nodiscard]] std::string merge_trace_files(
    const std::vector<std::string>& paths, const MergeOptions& options = {});

/// Bucket-free percentile summary of one latency component (exact, from
/// the individual samples in the trace).
struct LatencyStat {
  std::size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// End-to-end latency decomposition of a (merged) timeline, computed
/// from flight-recorder instants, live `msg` spans, and kv records.
/// Cross-node deltas (wire, deliver) are clock-corrected via
/// clock_corrections(), so they are meaningful even when node clocks
/// disagree by more than the latencies being measured.
struct LatencyReport {
  LatencyStat encode;   ///< submit -> encode (serialization cost)
  LatencyStat wire;     ///< wire_tx at sender -> wire_rx at receiver
  LatencyStat hold;     ///< causal hold-back time per delivery
  LatencyStat deliver;  ///< submit at sender -> deliver at receiver
  LatencyStat kv_wait;  ///< kv context-wait time per drained request
  /// Hold time grouped by the message's *sender* — which peer's traffic
  /// stalls the causal layer.
  std::map<std::uint32_t, LatencyStat> hold_by_sender;
  /// kv context wait grouped by the serving process (per shard replica).
  std::map<std::uint32_t, LatencyStat> kv_wait_by_pid;
};

/// Computes the decomposition across all input docs (alignment is
/// applied internally; pass the same docs whether or not the merged
/// output was aligned).
[[nodiscard]] LatencyReport latency_report(const std::vector<JsonValue>& docs);

/// Human-readable rendering (one component per line).
[[nodiscard]] std::string render_latency_report(const LatencyReport& report);

/// Machine-readable rendering (one JSON object; CI gates).
[[nodiscard]] std::string latency_report_json(const LatencyReport& report);

}  // namespace cbc::obs
