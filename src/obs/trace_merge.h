// Stitches the per-process Chrome trace files written by ClusterHarness
// nodes into one cross-process timeline. Each node writes
// `{"traceEvents":[...]}` with wall-clock timestamps and pid = its
// NodeId, so merging is validation + concatenation — the flow events
// (`ph:"s"`/`ph:"f"` with matching cat+id) become cross-process arrows
// once the events share one file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_lite.h"

namespace cbc::obs {

/// What a merged (or single) trace contains — for test assertions and
/// the CI smoke gate.
struct TraceSummary {
  std::size_t events = 0;
  /// pid -> number of `deliver` complete events on that process row.
  std::map<std::uint32_t, std::size_t> deliver_events;
  /// Matched Occurs_After flow edges (a start and an end sharing an id
  /// in the `occurs_after` category).
  std::size_t occurs_after_flows = 0;
  /// Matched per-message submit→deliver flows (`msg` category).
  std::size_t message_flows = 0;
  /// Flow starts/ends whose partner is missing.
  std::size_t unmatched_flows = 0;
};

/// Parses one Chrome trace-event JSON document and validates the
/// required fields on every event. Throws InvalidArgument on malformed
/// input.
[[nodiscard]] JsonValue parse_chrome_trace(const std::string& text);

/// Counts deliver spans per pid and Occurs_After flow pairs in a parsed
/// trace document.
[[nodiscard]] TraceSummary summarize_chrome_trace(const JsonValue& doc);

/// Reads, validates, and merges per-node trace files into one document;
/// events are sorted by timestamp. Throws InvalidArgument if any input
/// fails to load or parse.
[[nodiscard]] std::string merge_trace_files(
    const std::vector<std::string>& paths);

}  // namespace cbc::obs
