#include "obs/trace.h"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

namespace cbc::obs {

Tracer::Tracer(Options options) : options_(std::move(options)) {
  events_.reserve(1024);
  if (!options_.process_name.empty()) {
    // Perfetto/chrome://tracing reads process labels from "M" metadata
    // events named process_name.
    TraceEvent meta;
    meta.name = "process_name";
    meta.cat = "__metadata";
    meta.ph = 'M';
    meta.ts_us = 0;
    meta.pid = options_.pid;
    meta.args_json = "\"name\":\"" + json_escape(options_.process_name) + "\"";
    events_.push_back(std::move(meta));
  }
}

std::int64_t Tracer::wall_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

void Tracer::push(TraceEvent event) {
  if (!enabled()) {
    // Instrumented sites gate on tracing(hooks) already, but the mute
    // contract must also hold for direct calls.
    return;
  }
  const LockGuard lock(mutex_);
  if (events_.size() >= options_.max_events) {
    dropped_ += 1;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string_view name, std::string_view cat,
                     std::int64_t ts_us, std::string args_json) {
  TraceEvent event;
  event.name.assign(name);
  event.cat.assign(cat);
  event.ph = 'i';
  event.ts_us = ts_us;
  event.pid = options_.pid;
  event.args_json = std::move(args_json);
  push(std::move(event));
}

void Tracer::complete(std::string_view name, std::string_view cat,
                      std::int64_t ts_us, std::int64_t dur_us,
                      std::string args_json) {
  TraceEvent event;
  event.name.assign(name);
  event.cat.assign(cat);
  event.ph = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0 ? 0 : dur_us;
  event.pid = options_.pid;
  event.args_json = std::move(args_json);
  push(std::move(event));
}

void Tracer::flow_start(std::string_view name, std::string_view cat,
                        std::uint64_t flow_id, std::int64_t ts_us) {
  TraceEvent event;
  event.name.assign(name);
  event.cat.assign(cat);
  event.ph = 's';
  event.ts_us = ts_us;
  event.pid = options_.pid;
  event.flow_id = flow_id;
  push(std::move(event));
}

void Tracer::flow_end(std::string_view name, std::string_view cat,
                      std::uint64_t flow_id, std::int64_t ts_us) {
  TraceEvent event;
  event.name.assign(name);
  event.cat.assign(cat);
  event.ph = 'f';
  event.ts_us = ts_us;
  event.pid = options_.pid;
  event.flow_id = flow_id;
  push(std::move(event));
}

void Tracer::note_deliver(const MessageId& id, std::int64_t ts_us) {
  const LockGuard lock(mutex_);
  deliver_ts_.emplace(id, ts_us);
}

std::optional<std::int64_t> Tracer::deliver_ts(const MessageId& id) const {
  const LockGuard lock(mutex_);
  const auto it = deliver_ts_.find(id);
  if (it == deliver_ts_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t Tracer::size() const {
  const LockGuard lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  const LockGuard lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events_snapshot() const {
  const LockGuard lock(mutex_);
  return events_;
}

namespace {

void render_event(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
      << json_escape(event.cat) << "\",\"ph\":\"" << event.ph
      << "\",\"ts\":" << event.ts_us << ",\"pid\":" << event.pid
      << ",\"tid\":" << event.pid;
  if (event.ph == 'X') {
    out << ",\"dur\":" << event.dur_us;
  }
  if (event.ph == 's' || event.ph == 'f') {
    out << ",\"id\":\"0x" << std::hex << event.flow_id << std::dec << "\"";
    if (event.ph == 'f') {
      // Bind to the enclosing slice rather than the next one.
      out << ",\"bp\":\"e\"";
    }
  }
  if (event.ph == 'i') {
    out << ",\"s\":\"t\"";
  }
  if (!event.args_json.empty()) {
    out << ",\"args\":{" << event.args_json << "}";
  }
  out << "}";
}

}  // namespace

std::string render_trace_events(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    render_event(out, events[i]);
    if (i + 1 < events.size()) {
      out << ",";
    }
    out << "\n";
  }
  out << "]}\n";
  return out.str();
}

std::string Tracer::render_chrome_json() const {
  return render_trace_events(events_snapshot());
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << render_chrome_json();
  return static_cast<bool>(out);
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace cbc::obs
