// Application-specific consistency: the distributed name service (§5.2).
//
// In loosely coupled applications, messages are generated *spontaneously*
// — resolutions from clients and registrations from servers "occur
// independently on a name repository" — and tracking dependencies may be
// too expensive (large groups). So updates and queries are broadcast with
// NO ordering constraints, members may transiently diverge, and
// consistency is repaired at the application level:
//
//   "To enable such a check (for inconsistency), the query operation
//    carries sufficient context information in terms of the ordering of
//    upd1 and upd2. ... The application should discard qry2 since it
//    leads to incorrect result."
//
// Here a query carries, as context, the exact set of update message ids
// the issuing member had applied *for the queried name*. Every member
// processing the query compares that context with its own applied-update
// set for the name: a mismatch means the query's answer would differ
// across members, so the query is discarded (counted, surfaced to the
// issuer as inconsistent). Matching contexts guarantee the same answer
// everywhere without any ordering protocol — "more asynchronism in
// execution ... when inconsistencies occur infrequently".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "causal/osend.h"
#include "group/group_view.h"

namespace cbc {

/// Outcome of one query as decided by the issuing member.
struct QueryOutcome {
  MessageId query_id;
  std::string name;
  bool discarded = false;             ///< context mismatch at the issuer
  std::optional<std::string> value;   ///< binding when not discarded
};

/// Inconsistency-handling counters (per member, covering every query this
/// member processed, own or remote).
struct NameServiceStats {
  std::uint64_t updates_applied = 0;
  std::uint64_t queries_processed = 0;
  std::uint64_t queries_discarded = 0;  ///< context mismatches seen here
};

/// One member of the spontaneous-message name service.
class NameServiceMember {
 public:
  using QueryResultFn = std::function<void(const QueryOutcome&)>;

  struct Options {
    OSendMember::Options member;
  };

  NameServiceMember(Transport& transport, const GroupView& view)
      : NameServiceMember(transport, view, Options{}) {}
  NameServiceMember(Transport& transport, const GroupView& view,
                    Options options);

  /// Injects the broadcast member (any discipline — the service imposes
  /// no ordering constraints of its own; OSendMember is the default).
  explicit NameServiceMember(std::unique_ptr<BroadcastMember> member);

  /// Broadcasts a spontaneous registration (no ordering constraint).
  MessageId update(const std::string& name, const std::string& value);

  /// Broadcasts a spontaneous resolution carrying this member's context
  /// for `name`. `on_result` fires when the query is processed locally
  /// (immediately — its own context always matches at issue time) AND is
  /// re-checked at every other member; the issuer's callback reports the
  /// local outcome. Remote mismatches show up in remote members' stats.
  MessageId query(const std::string& name, QueryResultFn on_result);

  [[nodiscard]] const apps::Registry& registry() const { return registry_; }
  [[nodiscard]] const NameServiceStats& stats() const { return stats_; }
  [[nodiscard]] NodeId id() const { return member_->id(); }
  [[nodiscard]] const BroadcastMember& member() const {
    return *member_;
  }

 private:
  void on_delivery(const Delivery& delivery);
  [[nodiscard]] std::vector<MessageId> context_for(
      const std::string& name) const;

  std::unique_ptr<BroadcastMember> member_;
  apps::Registry registry_;
  // Applied update ids per name, in local application order.
  std::map<std::string, std::vector<MessageId>> applied_updates_;
  std::map<MessageId, QueryResultFn> pending_results_;
  NameServiceStats stats_;
};

}  // namespace cbc
