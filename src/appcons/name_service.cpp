#include "appcons/name_service.h"


#include "util/ensure.h"
#include "util/thread_annotations.h"
#include "util/serde.h"

namespace cbc {

NameServiceMember::NameServiceMember(Transport& transport,
                                     const GroupView& view, Options options)
    : NameServiceMember(std::make_unique<OSendMember>(
          transport, view, [](const Delivery&) {}, options.member)) {}

NameServiceMember::NameServiceMember(std::unique_ptr<BroadcastMember> member)
    : member_(std::move(member)) {
  member_->set_deliver(
      [this](const Delivery& delivery) { on_delivery(delivery); });
}

MessageId NameServiceMember::update(const std::string& name,
                                    const std::string& value) {
  const LockGuard guard(member_->stack_mutex());
  Writer args;
  args.str(name);
  args.str(value);
  // Spontaneous: no ordering constraint (Occurs_After(NULL)).
  return member_->broadcast("upd", args.take(), DepSpec::none());
}

MessageId NameServiceMember::query(const std::string& name,
                                   QueryResultFn on_result) {
  const LockGuard guard(member_->stack_mutex());
  Writer args;
  args.str(name);
  // Context: the ordered update ids this member has applied for `name`.
  const std::vector<MessageId> context = context_for(name);
  args.u32(static_cast<std::uint32_t>(context.size()));
  for (const MessageId& id : context) {
    id.encode(args);
  }
  if (on_result) {
    // Registered under the id the broadcast below will receive; the local
    // synchronous delivery fires it.
    pending_results_.emplace(
        MessageId{member_->id(), member_->stats().broadcasts + 1},
        std::move(on_result));
  }
  return member_->broadcast("qry", args.take(), DepSpec::none());
}

std::vector<MessageId> NameServiceMember::context_for(
    const std::string& name) const {
  const auto it = applied_updates_.find(name);
  return it == applied_updates_.end() ? std::vector<MessageId>{} : it->second;
}

void NameServiceMember::on_delivery(const Delivery& delivery) {
  Reader args(delivery.payload());
  if (delivery.label() == "upd") {
    const std::string name = args.str();
    const std::string value = args.str();
    Writer replay;
    replay.str(name);
    replay.str(value);
    Reader replay_reader(replay.bytes());
    registry_.apply("upd", replay_reader);
    applied_updates_[name].push_back(delivery.id);
    stats_.updates_applied += 1;
    return;
  }
  if (delivery.label() == "qry") {
    const std::string name = args.str();
    const std::uint32_t count = args.u32();
    std::vector<MessageId> context;
    context.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      context.push_back(MessageId::decode(args));
    }
    stats_.queries_processed += 1;

    // The answer to a query is determined by the LAST update applied for
    // the name; the query is consistent here iff our last applied update
    // matches the issuer's ("carries sufficient context information in
    // terms of the ordering of upd1 and upd2", §5.2).
    const std::vector<MessageId> local = context_for(name);
    const bool consistent =
        (local.empty() && context.empty()) ||
        (!local.empty() && !context.empty() && local.back() == context.back());

    QueryOutcome outcome;
    outcome.query_id = delivery.id;
    outcome.name = name;
    if (consistent) {
      outcome.value = registry_.lookup(name);
    } else {
      outcome.discarded = true;
      stats_.queries_discarded += 1;
    }
    const auto pending = pending_results_.find(delivery.id);
    if (pending != pending_results_.end()) {
      QueryResultFn fn = std::move(pending->second);
      pending_results_.erase(pending);
      fn(outcome);
    }
    return;
  }
  protocol_ensure(false, "NameServiceMember: unknown message label");
}

}  // namespace cbc
