#include "group/group_view.h"

#include <algorithm>
#include <sstream>

#include "util/ensure.h"

namespace cbc {

GroupView::GroupView(ViewId id, std::vector<NodeId> members)
    : id_(id), members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  const auto dup = std::adjacent_find(members_.begin(), members_.end());
  require(dup == members_.end(), "GroupView: duplicate member");
}

bool GroupView::contains(NodeId node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::optional<std::size_t> GroupView::rank_of(NodeId node) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(it - members_.begin());
}

NodeId GroupView::member_at(std::size_t rank) const {
  require(rank < members_.size(), "GroupView::member_at: rank out of range");
  return members_[rank];
}

std::string GroupView::to_string() const {
  std::ostringstream out;
  out << "view#" << id_ << "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) out << ",";
    out << members_[i];
  }
  out << "}";
  return out.str();
}

void GroupView::encode(Writer& writer) const {
  writer.u64(id_);
  writer.u32(static_cast<std::uint32_t>(members_.size()));
  for (const NodeId member : members_) {
    writer.u32(member);
  }
}

GroupView GroupView::decode(Reader& reader) {
  const ViewId id = reader.u64();
  const std::uint32_t count = reader.u32();
  std::vector<NodeId> members;
  members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    members.push_back(reader.u32());
  }
  return GroupView(id, std::move(members));
}

}  // namespace cbc
