// Group views: the membership snapshot a broadcast operates in.
//
// The paper organizes "various entities as members of a group" and sends
// every message (plus its causal relations) to all members (§3). A
// GroupView is an immutable, totally-ordered member list with a view id;
// ordering layers address members by their dense *rank* within the view,
// which is what vector-clock widths and deterministic tiebreaks key on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/serde.h"
#include "util/types.h"

namespace cbc {

/// Monotonically increasing identifier of a membership epoch.
using ViewId = std::uint64_t;

/// Immutable snapshot of group membership. Members are stored sorted by
/// NodeId, so rank(member) is deterministic and identical at all members.
class GroupView {
 public:
  GroupView() = default;

  /// Builds a view; duplicate members are rejected.
  GroupView(ViewId id, std::vector<NodeId> members);

  [[nodiscard]] ViewId id() const { return id_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// True when `node` is in this view.
  [[nodiscard]] bool contains(NodeId node) const;

  /// Dense index of `node` in the sorted member list.
  /// Returns nullopt when the node is not a member.
  [[nodiscard]] std::optional<std::size_t> rank_of(NodeId node) const;

  /// Member at a given rank (rank < size()).
  [[nodiscard]] NodeId member_at(std::size_t rank) const;

  bool operator==(const GroupView& other) const = default;

  [[nodiscard]] std::string to_string() const;

  void encode(Writer& writer) const;
  static GroupView decode(Reader& reader);

 private:
  ViewId id_ = 0;
  std::vector<NodeId> members_;
};

}  // namespace cbc
