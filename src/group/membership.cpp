#include "group/membership.h"

#include <algorithm>

#include "util/ensure.h"

namespace cbc {

Membership::Membership(std::vector<NodeId> initial_members) {
  require(!initial_members.empty(), "Membership: initial member set empty");
  history_.emplace_back(1, std::move(initial_members));
}

const GroupView& Membership::join(NodeId node) {
  require(!view().contains(node), "Membership::join: already a member");
  std::vector<NodeId> members = view().members();
  members.push_back(node);
  return install(std::move(members));
}

const GroupView& Membership::leave(NodeId node) {
  require(view().contains(node), "Membership::leave: not a member");
  require(view().size() > 1, "Membership::leave: cannot empty the group");
  std::vector<NodeId> members = view().members();
  members.erase(std::remove(members.begin(), members.end(), node),
                members.end());
  return install(std::move(members));
}

void Membership::subscribe(ViewListener listener) {
  require(static_cast<bool>(listener), "Membership::subscribe: empty listener");
  listeners_.push_back(std::move(listener));
}

const GroupView& Membership::install(std::vector<NodeId> members) {
  const ViewId next_id = view().id() + 1;
  history_.emplace_back(next_id, std::move(members));
  for (const auto& listener : listeners_) {
    listener(history_.back());
  }
  return history_.back();
}

}  // namespace cbc
